// Package fluxmodel implements the paper's parameterized network-flux model
// (§3.B). For a mobile sink at position u and an observation point p inside
// a field:
//
//	continuous: F(p) = s * (l² − d²) / (2d)          (Formula 3.2)
//	discrete:   F(p) ≈ s * (l² − d²) / (2 d r)       (Formula 3.4)
//
// where d is the Euclidean distance from u to p, l is the distance from u to
// the field boundary along the ray through p, s the traffic stretch, and r
// the average hop length. The discrete form is the continuous one divided by
// r, so the package exposes a single Geometry kernel g(u, p) = (l² − d²)/(2d)
// and lets callers scale by s (continuous) or the integrated factor c = s/r
// (discrete), exactly as the NLS fit of §4.A treats s/r as one parameter.
package fluxmodel

import (
	"fmt"
	"math"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/network"
)

// Model evaluates the flux kernel over a rectangular field.
type Model struct {
	field geom.Rect
	// minDist clamps the sink-to-node distance d away from zero: the model
	// diverges at the sink itself, and physically a node closer than about
	// half a hop is the sink's first relay. Defaults to half the hop length
	// used at calibration, falling back to 1e-6 when unset.
	minDist float64
}

// New returns a model over field with the given distance clamp. Pass
// minDist <= 0 to use a tiny epsilon (useful for pure-geometry tests).
func New(field geom.Rect, minDist float64) (*Model, error) {
	if field.Width() <= 0 || field.Height() <= 0 {
		return nil, fmt.Errorf("fluxmodel: degenerate field %v", field)
	}
	if minDist <= 0 {
		minDist = 1e-6
	}
	return &Model{field: field, minDist: minDist}, nil
}

// Field returns the model's field rectangle.
func (m *Model) Field() geom.Rect { return m.field }

// MinDist returns the distance clamp.
func (m *Model) MinDist() float64 { return m.minDist }

// Kernel returns g(sink, p) = (l² − d²) / (2 d), the per-unit-stretch flux
// the model predicts at point p for a sink at the given position. It returns
// 0 when p is outside the field (no sensor, no flux) and clamps d at
// MinDist. The kernel is always non-negative because l >= d for points
// inside the field.
//
// Kernel is the generic reference implementation (one Hypot, one RayExit
// with unit-vector normalization per call). The vectorized evaluators below
// use the fused closed-form path instead; the equivalence suite in
// fluxmodel_test.go pins the two together.
func (m *Model) Kernel(sink, p geom.Point) float64 {
	if !m.field.Contains(sink) {
		return 0
	}
	return m.kernelSinkInside(sink, p)
}

// kernelSinkInside is Kernel for a sink already known to lie inside the
// field. The vectorized evaluators hoist the sink containment check out of
// their inner loops — the sink is loop-invariant while the observation
// point varies.
func (m *Model) kernelSinkInside(sink, p geom.Point) float64 {
	if !m.field.Contains(p) {
		return 0
	}
	d := sink.Dist(p)
	l, ok := m.field.BoundaryDistThrough(sink, p)
	if !ok {
		// p coincides with the sink: use the clamped distance along an
		// arbitrary axis direction for l.
		l, ok = m.field.RayExit(sink, geom.Vec{DX: 1})
		if !ok {
			return 0
		}
	}
	if d < m.minDist {
		d = m.minDist
	}
	if l < d {
		l = d // numerical guard; geometrically l >= d inside the field
	}
	return (l*l - d*d) / (2 * d)
}

// FluxAt returns the discrete-model flux prediction c * g(sink, p) for the
// integrated stretch factor c = s/r.
func (m *Model) FluxAt(sink, p geom.Point, c float64) float64 {
	return c * m.Kernel(sink, p)
}

// kernelFused evaluates the kernel at p for a sink known to lie inside the
// field, using the fused closed-form boundary parameter instead of a RayExit
// call. With v = p − sink, |v| = d, the slab parameter τ = slabs.Scale(v)
// satisfies l = τ·d, so
//
//	g = (l² − d²) / (2d) = d (τ² − 1) / 2
//
// — one sqrt for d, two divisions inside Scale, no unit-vector
// normalization, no second sqrt for l. The slabs must be m.field.SlabsAt(sink),
// hoisted out of the caller's loop because they are sink-invariant. The
// MinDist clamp and the l >= d guard fall back to the explicit (l² − d²)/(2d)
// form, mirroring the generic path's clamp ordering exactly.
func (m *Model) kernelFused(slabs geom.ExitSlabs, sink, p geom.Point) float64 {
	if !m.field.Contains(p) {
		return 0
	}
	dx, dy := p.X-sink.X, p.Y-sink.Y
	tau := slabs.Scale(dx, dy)
	if math.IsInf(tau, 1) {
		// p coincides with the sink: take the generic fallback direction.
		return m.kernelSinkInside(sink, p)
	}
	d := math.Sqrt(dx*dx + dy*dy)
	if d >= m.minDist && tau >= 1 {
		return d * (tau*tau - 1) / 2
	}
	// Clamped region (p within MinDist of the sink, or a boundary sink whose
	// ray exits immediately): compute l before clamping d, as the generic
	// path does.
	l := tau * d
	if d < m.minDist {
		d = m.minDist
	}
	if l < d {
		l = d
	}
	return (l*l - d*d) / (2 * d)
}

// KernelVector evaluates the kernel at every point in pts for one sink.
func (m *Model) KernelVector(sink geom.Point, pts []geom.Point) []float64 {
	return m.KernelVectorInto(sink, pts, make([]float64, len(pts)))
}

// KernelVectorInto evaluates the kernel at every point in pts for one sink
// into the caller-supplied destination, which must have length len(pts),
// and returns it. It is the allocation-free hook the candidate search uses
// to build its per-candidate column caches, so it runs the fused column
// kernel: the sink containment check and the boundary slab offsets are
// hoisted out of the loop (both are sink-invariant), and each point costs
// one sqrt plus the closed-form slab parameter — no RayExit call.
func (m *Model) KernelVectorInto(sink geom.Point, pts []geom.Point, dst []float64) []float64 {
	if len(dst) != len(pts) {
		panic(fmt.Sprintf("fluxmodel: KernelVectorInto destination length %d, want %d", len(dst), len(pts)))
	}
	if !m.field.Contains(sink) {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	slabs := m.field.SlabsAt(sink)
	for i, p := range pts {
		dst[i] = m.kernelFused(slabs, sink, p)
	}
	return dst
}

// KernelMatrixInto evaluates the kernel for a whole batch of sinks in one
// pass: column j of the row-major len(sinks)×len(pts) matrix — the slice
// dst[j*len(pts) : (j+1)*len(pts)] — receives KernelVectorInto(sinks[j],
// pts, ...). dst must have length len(sinks)*len(pts); the filled matrix is
// returned. The fingerprint database (internal/fingerprint) builds its grid
// of flux-signature columns through this call, and the coarse-to-fine
// candidate search fills the kernel columns of a whole shortlist with it,
// so the per-sink setup (containment check, boundary slab offsets) is paid
// once per column and the writes stay contiguous across the batch.
func (m *Model) KernelMatrixInto(sinks, pts []geom.Point, dst []float64) []float64 {
	n := len(pts)
	if len(dst) != len(sinks)*n {
		panic(fmt.Sprintf("fluxmodel: KernelMatrixInto destination length %d, want %d", len(dst), len(sinks)*n))
	}
	for j, sink := range sinks {
		m.KernelVectorInto(sink, pts, dst[j*n:(j+1)*n])
	}
	return dst
}

// PredictFlux returns the model's combined flux prediction at each point of
// pts for K sinks with integrated stretch factors cs (c_j = s_j/r):
// F_i = Σ_j c_j g(sink_j, p_i). This is the estimated flux vector F̂ of
// Equation 4.1.
func (m *Model) PredictFlux(sinks []geom.Point, cs []float64, pts []geom.Point) ([]float64, error) {
	if len(sinks) != len(cs) {
		return nil, fmt.Errorf("fluxmodel: %d sinks but %d stretch factors", len(sinks), len(cs))
	}
	out := make([]float64, len(pts))
	for j, sink := range sinks {
		if cs[j] == 0 || !m.field.Contains(sink) {
			continue
		}
		slabs := m.field.SlabsAt(sink)
		for i, p := range pts {
			out[i] += cs[j] * m.kernelFused(slabs, sink, p)
		}
	}
	return out, nil
}

// Calibration captures the network-specific constants the discrete model
// needs: the average hop length r and the implied per-node data density.
type Calibration struct {
	HopLength float64 // r: average Euclidean length of one hop
	AvgDegree float64 // diagnostic: the network's average degree
}

// Calibrate estimates the model constants from a network, using the radial
// hop progress from the given reference node (nodes three or more hops out,
// where the discrete model applies).
func Calibrate(net *network.Network, refNode int) (Calibration, error) {
	if refNode < 0 || refNode >= net.Len() {
		return Calibration{}, fmt.Errorf("fluxmodel: reference node %d out of range", refNode)
	}
	return Calibration{
		HopLength: net.RadialHopProgress(refNode, 3),
		AvgDegree: net.AvgDegree(),
	}, nil
}

// ForNetwork builds a model for the network's field with the distance clamp
// set to half the calibrated hop length, which is where the discrete model's
// first relay ring sits.
func ForNetwork(net *network.Network, cal Calibration) (*Model, error) {
	return New(net.Field(), cal.HopLength/2)
}

// AccuracyStats quantifies how well the model approximates measured flux,
// reproducing the statistics behind Figure 3.
type AccuracyStats struct {
	// ErrRates holds the per-node relative approximation error
	// |measured − predicted| / measured for nodes with positive measured
	// flux (the paper's "error rate" of Fig 3a).
	ErrRates []float64
	// ByHop aggregates measured and predicted flux by hop distance from the
	// sink (Fig 3b).
	ByHop []HopFlux
	// EnergyPreserved3Plus is the fraction of the total flux amount carried
	// by nodes at least 3 hops from the sink; the paper notes those nodes
	// keep 70%+ of the network-flux energy while fitting the model much
	// better.
	EnergyPreserved3Plus float64
}

// HopFlux is the average measured and model flux at one hop distance.
type HopFlux struct {
	Hop       int
	N         int
	Measured  float64
	Predicted float64
}

// Accuracy compares measured per-node flux for a single sink against the
// model prediction with unit stretch. The caller passes the user's true
// stretch s and the calibrated hop length r; the prediction uses c = s/r.
// Nodes at fewer than minHop hops are excluded from the error-rate CDF
// (pass 0 to keep every node), matching the paper's observation that nodes
// very close to the sink fit poorly.
func Accuracy(net *network.Network, m *Model, sink geom.Point, measured []float64,
	stretch, hopLen float64, minHop int) (AccuracyStats, error) {
	if len(measured) != net.Len() {
		return AccuracyStats{}, fmt.Errorf("fluxmodel: measured length %d, want %d", len(measured), net.Len())
	}
	if hopLen <= 0 {
		return AccuracyStats{}, fmt.Errorf("fluxmodel: hop length must be positive, got %v", hopLen)
	}
	sinkNode := net.Nearest(sink)
	hops := net.HopsFrom(sinkNode)
	c := stretch / hopLen

	var stats AccuracyStats
	maxHop := 0
	for _, h := range hops {
		if h > maxHop {
			maxHop = h
		}
	}
	byHop := make([]HopFlux, maxHop+1)
	for h := range byHop {
		byHop[h].Hop = h
	}

	var totalEnergy, energy3 float64
	for i := 0; i < net.Len(); i++ {
		if hops[i] < 0 {
			continue
		}
		pred := m.FluxAt(sink, net.Pos(i), c)
		meas := measured[i]
		b := &byHop[hops[i]]
		b.N++
		b.Measured += meas
		b.Predicted += pred
		totalEnergy += meas
		if hops[i] >= 3 {
			energy3 += meas
		}
		if meas > 0 && hops[i] >= minHop {
			stats.ErrRates = append(stats.ErrRates, math.Abs(meas-pred)/meas)
		}
	}
	for h := range byHop {
		if byHop[h].N > 0 {
			byHop[h].Measured /= float64(byHop[h].N)
			byHop[h].Predicted /= float64(byHop[h].N)
		}
	}
	stats.ByHop = byHop
	if totalEnergy > 0 {
		stats.EnergyPreserved3Plus = energy3 / totalEnergy
	}
	return stats, nil
}

// ContinuousFlux returns the continuous-model flux (Formula 3.2) at distance
// d from the sink with boundary distance l and stretch s. It exists mainly
// to document and test the relationship between the two model forms.
func ContinuousFlux(s, l, d float64) float64 {
	if d <= 0 {
		return math.Inf(1)
	}
	return s * (l*l - d*d) / (2 * d)
}

// DiscreteFlux returns the discrete-model flux (Formula 3.4).
func DiscreteFlux(s, l, d, r float64) float64 {
	if d <= 0 || r <= 0 {
		return math.Inf(1)
	}
	return s * (l*l - d*d) / (2 * d * r)
}

// DiscreteFluxByHop returns the exact k-hop form of Formula 3.3/3.4:
// F_k = s (l² − ((k−1) r)²) / ((2k−1) r²), the flux concentrated at each
// k-hop node when all data beyond the (k−1)-th ring passes through ring k.
func DiscreteFluxByHop(s, l, r float64, k int) float64 {
	if k <= 0 || r <= 0 {
		return math.Inf(1)
	}
	kk := float64(k)
	return s * (l*l - (kk-1)*(kk-1)*r*r) / ((2*kk - 1) * r * r)
}
