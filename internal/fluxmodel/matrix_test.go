package fluxmodel

import (
	"testing"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

// TestKernelMatrixIntoMatchesVector pins the batched matrix fill to the
// per-sink vector path bit-for-bit: both run the same fused kernel per
// column, so the batch is pure layout, not a numerical variant.
func TestKernelMatrixIntoMatchesVector(t *testing.T) {
	m, err := New(geom.Square(30), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(311)
	pts := make([]geom.Point, 45)
	for i := range pts {
		pts[i] = src.InRect(m.Field())
	}
	sinks := make([]geom.Point, 17)
	for j := range sinks {
		sinks[j] = src.InRect(m.Field())
	}
	sinks[3] = geom.Pt(-4, 50) // outside the field: zero column
	n := len(pts)
	got := m.KernelMatrixInto(sinks, pts, make([]float64, len(sinks)*n))
	col := make([]float64, n)
	for j, sink := range sinks {
		m.KernelVectorInto(sink, pts, col)
		for i, want := range col {
			if got[j*n+i] != want {
				t.Fatalf("sink %d point %d: matrix %v != vector %v", j, i, got[j*n+i], want)
			}
		}
	}
}

// TestKernelMatrixIntoBadLength pins the destination-length contract.
func TestKernelMatrixIntoBadLength(t *testing.T) {
	m, err := New(geom.Square(10), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short destination must panic")
		}
	}()
	m.KernelMatrixInto(make([]geom.Point, 2), make([]geom.Point, 3), make([]float64, 5))
}
