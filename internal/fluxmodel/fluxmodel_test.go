package fluxmodel

import (
	"math"
	"testing"
	"testing/quick"

	"fluxtrack/internal/deploy"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/network"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/stats"
	"fluxtrack/internal/traffic"
)

func mustModel(t testing.TB, field geom.Rect, minDist float64) *Model {
	t.Helper()
	m, err := New(field, minDist)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(geom.Rect{}, 1); err == nil {
		t.Error("degenerate field must error")
	}
	m, err := New(geom.Square(10), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.MinDist() != 1e-6 {
		t.Errorf("default minDist = %v, want 1e-6", m.MinDist())
	}
}

func TestKernelBasicGeometry(t *testing.T) {
	m := mustModel(t, geom.Square(30), 0)
	sink := geom.Pt(15, 15)
	// Node east of the center: d = 5, ray exits at x=30 so l = 15.
	got := m.Kernel(sink, geom.Pt(20, 15))
	want := (15.0*15 - 5.0*5) / (2 * 5)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Kernel = %v, want %v", got, want)
	}
}

func TestKernelZeroOutsideField(t *testing.T) {
	m := mustModel(t, geom.Square(30), 0)
	if got := m.Kernel(geom.Pt(15, 15), geom.Pt(31, 15)); got != 0 {
		t.Errorf("Kernel outside field = %v, want 0", got)
	}
	if got := m.Kernel(geom.Pt(-1, 15), geom.Pt(15, 15)); got != 0 {
		t.Errorf("Kernel with outside sink = %v, want 0", got)
	}
}

func TestKernelAtBoundaryIsZero(t *testing.T) {
	m := mustModel(t, geom.Square(30), 0)
	sink := geom.Pt(15, 15)
	// A node on the boundary along the ray has l == d, so zero flux.
	if got := m.Kernel(sink, geom.Pt(30, 15)); math.Abs(got) > 1e-9 {
		t.Errorf("boundary Kernel = %v, want 0", got)
	}
}

func TestKernelDecreasesWithDistance(t *testing.T) {
	// Along a fixed ray the kernel must decrease monotonically in d.
	m := mustModel(t, geom.Square(30), 0.5)
	sink := geom.Pt(5, 15)
	prev := math.Inf(1)
	for d := 1.0; d < 24; d += 0.5 {
		f := m.Kernel(sink, geom.Pt(5+d, 15))
		if f > prev {
			t.Fatalf("kernel increased with distance at d=%v: %v > %v", d, f, prev)
		}
		prev = f
	}
}

func TestKernelNonNegativeProperty(t *testing.T) {
	m := mustModel(t, geom.Square(30), 0.5)
	f := func(sx, sy, px, py uint16) bool {
		sink := geom.Pt(float64(sx%3000)/100, float64(sy%3000)/100)
		p := geom.Pt(float64(px%3000)/100, float64(py%3000)/100)
		k := m.Kernel(sink, p)
		return k >= 0 && !math.IsNaN(k) && !math.IsInf(k, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestKernelSinkCoincidence(t *testing.T) {
	m := mustModel(t, geom.Square(30), 1)
	// p == sink: must stay finite thanks to the distance clamp.
	k := m.Kernel(geom.Pt(15, 15), geom.Pt(15, 15))
	if math.IsInf(k, 0) || math.IsNaN(k) || k < 0 {
		t.Errorf("coincident Kernel = %v, want finite non-negative", k)
	}
}

func TestFluxAtScaling(t *testing.T) {
	m := mustModel(t, geom.Square(30), 0)
	sink, p := geom.Pt(10, 10), geom.Pt(14, 10)
	if got, want := m.FluxAt(sink, p, 2), 2*m.Kernel(sink, p); got != want {
		t.Errorf("FluxAt = %v, want %v", got, want)
	}
}

func TestPredictFluxSuperposition(t *testing.T) {
	m := mustModel(t, geom.Square(30), 0.5)
	sinks := []geom.Point{geom.Pt(8, 8), geom.Pt(22, 22)}
	cs := []float64{1.5, 2.5}
	pts := []geom.Point{geom.Pt(10, 10), geom.Pt(15, 15), geom.Pt(25, 20)}
	got, err := m.PredictFlux(sinks, cs, pts)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		want := cs[0]*m.Kernel(sinks[0], p) + cs[1]*m.Kernel(sinks[1], p)
		if math.Abs(got[i]-want) > 1e-12 {
			t.Errorf("PredictFlux[%d] = %v, want %v", i, got[i], want)
		}
	}
	if _, err := m.PredictFlux(sinks, []float64{1}, pts); err == nil {
		t.Error("mismatched sinks/factors must error")
	}
}

func TestContinuousVsDiscreteRelation(t *testing.T) {
	// Formula 3.4 is Formula 3.2 divided by r.
	s, l, d, r := 2.0, 20.0, 5.0, 1.3
	cont := ContinuousFlux(s, l, d)
	disc := DiscreteFlux(s, l, d, r)
	if math.Abs(disc-cont/r) > 1e-12 {
		t.Errorf("discrete = %v, want continuous/r = %v", disc, cont/r)
	}
}

func TestDiscreteFluxByHopMatchesApproximation(t *testing.T) {
	// For k >> 1 the by-hop form approaches the d-based approximation with
	// d = (k - 1/2) r (midpoint of the strip).
	s, l, r := 1.0, 30.0, 1.0
	for k := 5; k <= 20; k++ {
		exact := DiscreteFluxByHop(s, l, r, k)
		d := (float64(k) - 0.5) * r
		approx := DiscreteFlux(s, l, d, r)
		relErr := math.Abs(exact-approx) / exact
		if relErr > 0.05 {
			t.Errorf("k=%d: by-hop %v vs approx %v (rel err %v)", k, exact, approx, relErr)
		}
	}
}

func TestDegenerateFluxForms(t *testing.T) {
	if !math.IsInf(ContinuousFlux(1, 10, 0), 1) {
		t.Error("ContinuousFlux at d=0 must be +Inf")
	}
	if !math.IsInf(DiscreteFlux(1, 10, 5, 0), 1) {
		t.Error("DiscreteFlux with r=0 must be +Inf")
	}
	if !math.IsInf(DiscreteFluxByHop(1, 10, 1, 0), 1) {
		t.Error("DiscreteFluxByHop with k=0 must be +Inf")
	}
}

func buildNet(t testing.TB, n int, seed uint64, kind deploy.Kind, radius float64) *network.Network {
	t.Helper()
	src := rng.New(seed)
	pts, err := deploy.Generate(deploy.Config{Field: geom.Square(30), N: n, Kind: kind}, src)
	if err != nil {
		t.Fatal(err)
	}
	net, err := network.New(geom.Square(30), pts, radius)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestCalibrate(t *testing.T) {
	net := buildNet(t, 900, 1, deploy.PerturbedGrid, 2.4)
	cal, err := Calibrate(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cal.HopLength <= 0 || cal.HopLength > 2.4 {
		t.Errorf("hop length = %v, want in (0, 2.4]", cal.HopLength)
	}
	if cal.AvgDegree < 10 {
		t.Errorf("avg degree = %v, want >= 10", cal.AvgDegree)
	}
	if _, err := Calibrate(net, -1); err == nil {
		t.Error("invalid reference node must error")
	}
}

func TestForNetwork(t *testing.T) {
	net := buildNet(t, 900, 2, deploy.PerturbedGrid, 2.4)
	cal, err := Calibrate(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ForNetwork(net, cal)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.MinDist(), cal.HopLength/2; got != want {
		t.Errorf("minDist = %v, want %v", got, want)
	}
}

// TestModelApproximatesSimulatedFlux is the repository's version of the
// paper's Figure 3(a) claim: for a single user in a reasonably dense
// network, 80%+ of nodes (3+ hops out, where the model is meant to apply)
// have relative approximation error below 0.4.
func TestModelApproximatesSimulatedFlux(t *testing.T) {
	net := buildNet(t, 900, 3, deploy.PerturbedGrid, 2.4)
	sim := traffic.NewSimulator(net)
	user := traffic.User{Pos: geom.Pt(14, 16), Stretch: 2, Active: true}
	measured, err := sim.Flux([]traffic.User{user})
	if err != nil {
		t.Fatal(err)
	}
	// Two smoothing passes, as the paper's neighborhood averaging suggests.
	smoothed, err := net.SmoothOverNeighborhood(measured)
	if err != nil {
		t.Fatal(err)
	}
	smoothed, err = net.SmoothOverNeighborhood(smoothed)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(net, net.Nearest(user.Pos))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ForNetwork(net, cal)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(net, m, user.Pos, smoothed, user.Stretch, cal.HopLength, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(acc.ErrRates) < 100 {
		t.Fatalf("only %d error-rate samples", len(acc.ErrRates))
	}
	// The paper reports 80%+ of nodes under 0.4 error rate at its densest
	// setting; our deterministic single-tree simulator is somewhat noisier,
	// so assert the shape with margin (see EXPERIMENTS.md for measured CDFs).
	frac := stats.CDFAt(acc.ErrRates, 0.4)
	if frac < 0.6 {
		t.Errorf("fraction of nodes with error rate <= 0.4 is %v, want >= 0.6 (paper: 80%%+)", frac)
	}
	if acc.EnergyPreserved3Plus < 0.5 {
		t.Errorf("flux amount carried by 3+ hop nodes = %v, want >= 0.5 (paper: 70%%+)", acc.EnergyPreserved3Plus)
	}
}

func TestAccuracyByHopDecreasing(t *testing.T) {
	// The measured by-hop average flux must decrease with hop distance
	// (inner rings relay more traffic).
	net := buildNet(t, 900, 4, deploy.PerturbedGrid, 2.4)
	sim := traffic.NewSimulator(net)
	user := traffic.User{Pos: geom.Pt(15, 15), Stretch: 1, Active: true}
	measured, err := sim.Flux([]traffic.User{user})
	if err != nil {
		t.Fatal(err)
	}
	cal, _ := Calibrate(net, net.Nearest(user.Pos))
	m, _ := ForNetwork(net, cal)
	acc, err := Accuracy(net, m, user.Pos, measured, 1, cal.HopLength, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Compare hop 1 vs hop 4 and hop 2 vs hop 5: strong decay expected.
	get := func(h int) float64 {
		for _, b := range acc.ByHop {
			if b.Hop == h && b.N > 0 {
				return b.Measured
			}
		}
		t.Fatalf("no data at hop %d", h)
		return 0
	}
	if !(get(1) > get(4)) || !(get(2) > get(5)) {
		t.Errorf("by-hop measured flux not decreasing: h1=%v h4=%v h2=%v h5=%v",
			get(1), get(4), get(2), get(5))
	}
}

func TestAccuracyValidation(t *testing.T) {
	net := buildNet(t, 100, 5, deploy.PerturbedGrid, 3)
	m := mustModel(t, geom.Square(30), 0.5)
	if _, err := Accuracy(net, m, geom.Pt(5, 5), []float64{1}, 1, 1, 0); err == nil {
		t.Error("mismatched measured length must error")
	}
	measured := make([]float64, net.Len())
	if _, err := Accuracy(net, m, geom.Pt(5, 5), measured, 1, 0, 0); err == nil {
		t.Error("zero hop length must error")
	}
}

func BenchmarkKernel(b *testing.B) {
	m := mustModel(b, geom.Square(30), 0.6)
	sink := geom.Pt(13, 17)
	p := geom.Pt(22, 9)
	for i := 0; i < b.N; i++ {
		_ = m.Kernel(sink, p)
	}
}

func BenchmarkPredictFlux90Nodes3Users(b *testing.B) {
	m := mustModel(b, geom.Square(30), 0.6)
	src := rng.New(1)
	pts := make([]geom.Point, 90)
	for i := range pts {
		pts[i] = src.InRect(m.Field())
	}
	sinks := []geom.Point{geom.Pt(5, 5), geom.Pt(15, 20), geom.Pt(25, 10)}
	cs := []float64{1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PredictFlux(sinks, cs, pts); err != nil {
			b.Fatal(err)
		}
	}
}

// TestKernelVectorInto: the allocation-free form matches KernelVector
// exactly, including the outside-sink and outside-point zero cases.
func TestKernelVectorInto(t *testing.T) {
	m := mustModel(t, geom.Square(30), 0.6)
	src := rng.New(42)
	pts := make([]geom.Point, 40)
	for i := range pts {
		pts[i] = src.InRect(m.Field())
	}
	pts[7] = geom.Pt(-3, 5) // outside the field: kernel must be zero there
	dst := make([]float64, len(pts))
	for _, sink := range []geom.Point{geom.Pt(4, 9), geom.Pt(29.5, 0.5), geom.Pt(-1, 10)} {
		want := m.KernelVector(sink, pts)
		got := m.KernelVectorInto(sink, pts, dst)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sink %v: KernelVectorInto[%d] = %v, KernelVector = %v", sink, i, got[i], want[i])
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("KernelVectorInto with mismatched destination must panic")
		}
	}()
	m.KernelVectorInto(geom.Pt(1, 1), pts, make([]float64, 3))
}

// TestKernelVectorIntoNoAllocs guards the hoisted-sink-check fast path.
func TestKernelVectorIntoNoAllocs(t *testing.T) {
	m := mustModel(t, geom.Square(30), 0.6)
	src := rng.New(7)
	pts := make([]geom.Point, 64)
	for i := range pts {
		pts[i] = src.InRect(m.Field())
	}
	dst := make([]float64, len(pts))
	sink := geom.Pt(12, 18)
	allocs := testing.AllocsPerRun(50, func() {
		m.KernelVectorInto(sink, pts, dst)
	})
	if allocs != 0 {
		t.Fatalf("KernelVectorInto allocates %.1f times per call, want 0", allocs)
	}
}
