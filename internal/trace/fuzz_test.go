package trace

import (
	"strings"
	"testing"
)

// FuzzParse ensures the trace parser never panics and that everything it
// accepts survives a write/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("100.5\tuserA\tAP001\n")
	f.Add("# comment\n\n1 u a\n")
	f.Add("")
	f.Add("nonsense line without tabs")
	f.Add("1e300\tu\ta\n-5\tv\tb\n")
	f.Add("NaN\tu\ta\n")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Round trip: whatever parsed must re-serialize and re-parse to the
		// same records, provided the fields contain no whitespace (Write's
		// format is whitespace-delimited).
		clean := true
		for _, r := range recs {
			if strings.ContainsAny(r.User, " \t\n") || strings.ContainsAny(r.AP, " \t\n") ||
				r.User == "" || r.AP == "" {
				clean = false
				break
			}
		}
		if !clean {
			return
		}
		var sb strings.Builder
		if err := Write(&sb, recs); err != nil {
			t.Fatalf("Write failed on parsed records: %v", err)
		}
		again, err := Parse(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-parse failed: %v (serialized: %q)", err, sb.String())
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if recs[i].User != again[i].User || recs[i].AP != again[i].AP {
				t.Fatalf("round trip changed record %d: %+v -> %+v", i, recs[i], again[i])
			}
		}
	})
}
