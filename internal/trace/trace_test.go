package trace

import (
	"sort"
	"strings"
	"testing"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

func testCampus(t testing.TB, numAPs int, seed uint64) Campus {
	t.Helper()
	c, err := GenerateCampus(geom.Square(1000), numAPs, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateCampus(t *testing.T) {
	c := testCampus(t, 500, 1)
	if len(c.APs) != 500 {
		t.Fatalf("got %d APs, want 500", len(c.APs))
	}
	seen := map[string]bool{}
	for _, ap := range c.APs {
		if !c.Area.Contains(ap.Pos) {
			t.Errorf("AP %s at %v outside area", ap.ID, ap.Pos)
		}
		if seen[ap.ID] {
			t.Errorf("duplicate AP ID %s", ap.ID)
		}
		seen[ap.ID] = true
	}
	if _, err := GenerateCampus(geom.Square(10), 0, rng.New(1)); err == nil {
		t.Error("zero APs must error")
	}
	if _, err := GenerateCampus(geom.Rect{}, 5, rng.New(1)); err == nil {
		t.Error("degenerate area must error")
	}
}

func TestLandmarks(t *testing.T) {
	c := testCampus(t, 500, 2)
	region := geom.NewRect(geom.Pt(200, 200), geom.Pt(700, 700))
	lm := c.Landmarks(region, 50)
	if len(lm) != 50 {
		t.Fatalf("got %d landmarks, want 50", len(lm))
	}
	for _, ap := range lm {
		if !region.Contains(ap.Pos) {
			t.Errorf("landmark %s at %v outside region", ap.ID, ap.Pos)
		}
	}
}

func TestGenerateRecords(t *testing.T) {
	c := testCampus(t, 100, 3)
	recs, err := Generate(c, GenConfig{NumUsers: 20, Duration: 100000}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 20 {
		t.Fatalf("only %d records generated", len(recs))
	}
	// Sorted by time.
	if !sort.SliceIsSorted(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time }) {
		// Equal times are allowed; check non-decreasing explicitly.
		for i := 1; i < len(recs); i++ {
			if recs[i].Time < recs[i-1].Time {
				t.Fatal("records not sorted by time")
			}
		}
	}
	// All 20 users appear.
	users := map[string]bool{}
	for _, r := range recs {
		users[r.User] = true
		if r.Time < 0 || r.Time >= 100000+600 {
			t.Errorf("record time %v outside range", r.Time)
		}
	}
	if len(users) != 20 {
		t.Errorf("got %d distinct users, want 20", len(users))
	}
}

func TestGenerateValidation(t *testing.T) {
	c := testCampus(t, 10, 5)
	if _, err := Generate(c, GenConfig{NumUsers: 0, Duration: 100}, rng.New(1)); err == nil {
		t.Error("zero users must error")
	}
	if _, err := Generate(c, GenConfig{NumUsers: 1, Duration: 0}, rng.New(1)); err == nil {
		t.Error("zero duration must error")
	}
	if _, err := Generate(Campus{Area: geom.Square(10)}, GenConfig{NumUsers: 1, Duration: 10}, rng.New(1)); err == nil {
		t.Error("campus without APs must error")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	c := testCampus(t, 50, 6)
	recs, err := Generate(c, GenConfig{NumUsers: 5, Duration: 50000}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, recs); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(recs) {
		t.Fatalf("round trip lost records: %d vs %d", len(parsed), len(recs))
	}
	for i := range recs {
		if parsed[i] != recs[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, parsed[i], recs[i])
		}
	}
}

func TestParseCommentsAndErrors(t *testing.T) {
	input := "# header comment\n\n100.5\tuserA\tAP001\n"
	recs, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].User != "userA" || recs[0].Time != 100.5 {
		t.Fatalf("unexpected parse result: %+v", recs)
	}
	if _, err := Parse(strings.NewReader("1 2\n")); err == nil {
		t.Error("two-field line must error")
	}
	if _, err := Parse(strings.NewReader("notanumber u a\n")); err == nil {
		t.Error("bad timestamp must error")
	}
}

func TestCompress(t *testing.T) {
	recs := []Record{{Time: 200, User: "u", AP: "a"}, {Time: 400, User: "u", AP: "b"}}
	out, err := Compress(recs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Time != 2 || out[1].Time != 4 {
		t.Errorf("compressed times = %v, %v; want 2, 4", out[0].Time, out[1].Time)
	}
	if recs[0].Time != 200 {
		t.Error("Compress mutated its input")
	}
	if _, err := Compress(recs, 0); err == nil {
		t.Error("zero factor must error")
	}
}

func TestWindow(t *testing.T) {
	recs := []Record{
		{Time: 5, User: "u", AP: "a"},
		{Time: 15, User: "u", AP: "b"},
		{Time: 25, User: "u", AP: "c"},
	}
	out := Window(recs, 10, 20)
	if len(out) != 1 || out[0].Time != 5 || out[0].AP != "b" {
		t.Fatalf("Window result = %+v", out)
	}
}

func TestTimedPathAt(t *testing.T) {
	tp := TimedPath{
		Times:  []float64{0, 10, 20},
		Points: []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10)},
	}
	tests := []struct {
		t    float64
		want geom.Point
	}{
		{-5, geom.Pt(0, 0)},
		{0, geom.Pt(0, 0)},
		{5, geom.Pt(5, 0)},
		{10, geom.Pt(10, 0)},
		{15, geom.Pt(10, 5)},
		{20, geom.Pt(10, 10)},
		{99, geom.Pt(10, 10)},
	}
	for _, tt := range tests {
		if got := tp.At(tt.t); got.Dist(tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
	if got := (TimedPath{}).At(5); got != (geom.Point{}) {
		t.Errorf("empty path At = %v, want zero point", got)
	}
}

func TestTimedPathSpan(t *testing.T) {
	tp := TimedPath{Times: []float64{3, 9}, Points: []geom.Point{{}, {}}}
	lo, hi := tp.Span()
	if lo != 3 || hi != 9 {
		t.Errorf("Span = (%v, %v), want (3, 9)", lo, hi)
	}
	lo, hi = (TimedPath{}).Span()
	if lo != 0 || hi != 0 {
		t.Errorf("empty Span = (%v, %v), want (0, 0)", lo, hi)
	}
}

func TestPaths(t *testing.T) {
	aps := []AP{
		{ID: "a", Pos: geom.Pt(0, 0)},
		{ID: "b", Pos: geom.Pt(10, 0)},
	}
	recs := []Record{
		{Time: 0, User: "u1", AP: "a"},
		{Time: 10, User: "u1", AP: "b"},
		{Time: 5, User: "u2", AP: "b"},
		{Time: 7, User: "u2", AP: "unknown"}, // skipped
	}
	paths := Paths(recs, aps)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	u1 := paths["u1"]
	if got := u1.At(5); got.Dist(geom.Pt(5, 0)) > 1e-12 {
		t.Errorf("u1.At(5) = %v, want (5, 0)", got)
	}
	u2 := paths["u2"]
	if len(u2.Times) != 1 {
		t.Errorf("u2 has %d samples, want 1 (unknown AP skipped)", len(u2.Times))
	}
}

func TestMapRect(t *testing.T) {
	tp := TimedPath{
		Times:  []float64{0, 1},
		Points: []geom.Point{geom.Pt(200, 200), geom.Pt(700, 700)},
	}
	from := geom.NewRect(geom.Pt(200, 200), geom.Pt(700, 700))
	to := geom.Square(30)
	mapped := tp.MapRect(from, to)
	if got := mapped.Points[0]; got.Dist(geom.Pt(0, 0)) > 1e-9 {
		t.Errorf("mapped start = %v, want (0,0)", got)
	}
	if got := mapped.Points[1]; got.Dist(geom.Pt(30, 30)) > 1e-9 {
		t.Errorf("mapped end = %v, want (30,30)", got)
	}
	// Original untouched.
	if tp.Points[0] != geom.Pt(200, 200) {
		t.Error("MapRect mutated its input")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := testCampus(t, 50, 8)
	a, err := Generate(c, GenConfig{NumUsers: 3, Duration: 20000}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(c, GenConfig{NumUsers: 3, Duration: 20000}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("non-deterministic record count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs across equal seeds", i)
		}
	}
}
