// Package trace provides the campus mobility-trace substrate for the
// paper's trace-driven experiment (§5.C).
//
// The paper replays the Dartmouth Campus data set v1.3 ("syslog" portion):
// sequences of AP associations per wireless card, ~500 APs with 50 of them
// in a rectangular region used as location landmarks, segments intercepted
// and compressed in time by a factor of 100. That dataset is not
// redistributable here, so this package supplies (a) a parser for a
// documented syslog-like record format — real traces can be converted and
// replayed unchanged — and (b) a synthetic generator that produces the same
// statistical object: per-user asynchronous AP-association sequences with
// heavy-tailed dwell times over a campus AP layout.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

// AP is a wireless access point with a known campus position.
type AP struct {
	ID  string
	Pos geom.Point
}

// Record is one association event: user associated with AP at Time.
type Record struct {
	Time float64 // seconds since the trace epoch
	User string
	AP   string
}

// Campus is a set of APs over a campus area.
type Campus struct {
	Area geom.Rect
	APs  []AP
}

// GenerateCampus scatters numAPs access points uniformly over area.
func GenerateCampus(area geom.Rect, numAPs int, src *rng.Source) (Campus, error) {
	if numAPs <= 0 {
		return Campus{}, fmt.Errorf("trace: numAPs must be positive, got %d", numAPs)
	}
	if area.Width() <= 0 || area.Height() <= 0 {
		return Campus{}, fmt.Errorf("trace: degenerate area %v", area)
	}
	aps := make([]AP, numAPs)
	for i := range aps {
		aps[i] = AP{ID: fmt.Sprintf("AP%03d", i), Pos: src.InRect(area)}
	}
	return Campus{Area: area, APs: aps}, nil
}

// Landmarks returns up to max APs inside region — the subset the paper uses
// as location references (50 APs in a rectangular region).
func (c Campus) Landmarks(region geom.Rect, max int) []AP {
	out := make([]AP, 0, max)
	for _, ap := range c.APs {
		if region.Contains(ap.Pos) {
			out = append(out, ap)
			if len(out) == max {
				break
			}
		}
	}
	return out
}

// apIndex maps AP IDs to positions.
func apIndex(aps []AP) map[string]geom.Point {
	m := make(map[string]geom.Point, len(aps))
	for _, ap := range aps {
		m[ap.ID] = ap.Pos
	}
	return m
}

// GenConfig configures synthetic trace generation.
type GenConfig struct {
	NumUsers int
	Duration float64 // trace length in seconds
	// Dwell times at an AP are bounded-Pareto distributed in
	// [MinDwell, MaxDwell] with shape DwellShape; heavy-tailed dwelling is
	// the dominant feature of campus WLAN traces.
	MinDwell, MaxDwell, DwellShape float64
	// HopRadius bounds how far (in campus distance) the next AP can be;
	// users roam between nearby APs. Zero means a tenth of the area
	// diagonal.
	HopRadius float64
}

func (g GenConfig) withDefaults(area geom.Rect) GenConfig {
	if g.MinDwell <= 0 {
		g.MinDwell = 60 // one minute
	}
	if g.MaxDwell <= g.MinDwell {
		g.MaxDwell = 6 * 3600 // six hours
	}
	if g.DwellShape <= 0 {
		g.DwellShape = 1.2
	}
	if g.HopRadius <= 0 {
		g.HopRadius = area.Diameter() / 10
	}
	return g
}

// Generate produces association records for the campus, sorted by time.
// Each user starts at a random AP at a random offset and roams between
// nearby APs with heavy-tailed dwell times.
func Generate(c Campus, cfg GenConfig, src *rng.Source) ([]Record, error) {
	if cfg.NumUsers <= 0 {
		return nil, fmt.Errorf("trace: NumUsers must be positive, got %d", cfg.NumUsers)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("trace: Duration must be positive, got %v", cfg.Duration)
	}
	if len(c.APs) == 0 {
		return nil, fmt.Errorf("trace: campus has no APs")
	}
	cfg = cfg.withDefaults(c.Area)

	var records []Record
	for u := 0; u < cfg.NumUsers; u++ {
		user := fmt.Sprintf("user%04d", u)
		cur := src.IntN(len(c.APs))
		t := src.Uniform(0, cfg.MinDwell*10)
		for t < cfg.Duration {
			records = append(records, Record{Time: t, User: user, AP: c.APs[cur].ID})
			t += src.Pareto(cfg.MinDwell, cfg.MaxDwell, cfg.DwellShape)
			cur = c.nextAP(cur, cfg.HopRadius, src)
		}
	}
	sort.Slice(records, func(i, j int) bool {
		if records[i].Time != records[j].Time {
			return records[i].Time < records[j].Time
		}
		return records[i].User < records[j].User
	})
	return records, nil
}

// nextAP picks a roaming destination within hopRadius of the current AP,
// falling back to any AP when none is close enough.
func (c Campus) nextAP(cur int, hopRadius float64, src *rng.Source) int {
	var near []int
	for i, ap := range c.APs {
		if i != cur && ap.Pos.Dist(c.APs[cur].Pos) <= hopRadius {
			near = append(near, i)
		}
	}
	if len(near) == 0 {
		return src.IntN(len(c.APs))
	}
	return near[src.IntN(len(near))]
}

// Write emits records in the repository's syslog-like line format:
//
//	<time>\t<user>\t<ap>
//
// with time printed as a decimal number of seconds.
func Write(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range records {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\n",
			strconv.FormatFloat(r.Time, 'f', -1, 64), r.User, r.AP); err != nil {
			return fmt.Errorf("trace: write: %w", err)
		}
	}
	return bw.Flush()
}

// Parse reads records in the format emitted by Write. Blank lines and lines
// starting with '#' are ignored.
func Parse(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		t, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad timestamp %q: %v", lineNo, fields[0], err)
		}
		out = append(out, Record{Time: t, User: fields[1], AP: fields[2]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return out, nil
}

// Compress divides every timestamp by factor — the paper compresses the
// Dartmouth timeline by a factor of 100 to obtain compact trajectories.
func Compress(records []Record, factor float64) ([]Record, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("trace: compression factor must be positive, got %v", factor)
	}
	out := make([]Record, len(records))
	for i, r := range records {
		out[i] = Record{Time: r.Time / factor, User: r.User, AP: r.AP}
	}
	return out, nil
}

// Window keeps records with t0 <= Time < t1, shifting times so the window
// starts at zero — the paper's "intercept a segment from each record".
func Window(records []Record, t0, t1 float64) []Record {
	var out []Record
	for _, r := range records {
		if r.Time >= t0 && r.Time < t1 {
			out = append(out, Record{Time: r.Time - t0, User: r.User, AP: r.AP})
		}
	}
	return out
}

// TimedPath is one user's mobility path: position samples at association
// times, interpolated linearly in between (the paper concatenates AP
// locations into a mobility path).
type TimedPath struct {
	Times  []float64
	Points []geom.Point
}

// At returns the interpolated position at time t, clamping outside the
// recorded span.
func (tp TimedPath) At(t float64) geom.Point {
	n := len(tp.Times)
	if n == 0 {
		return geom.Point{}
	}
	if t <= tp.Times[0] {
		return tp.Points[0]
	}
	if t >= tp.Times[n-1] {
		return tp.Points[n-1]
	}
	i := sort.SearchFloat64s(tp.Times, t)
	// Times[i-1] < t <= Times[i] after the boundary checks above.
	t0, t1 := tp.Times[i-1], tp.Times[i]
	if t1 == t0 {
		return tp.Points[i]
	}
	return geom.Lerp(tp.Points[i-1], tp.Points[i], (t-t0)/(t1-t0))
}

// Span returns the first and last recorded times, or (0, 0) for an empty
// path.
func (tp TimedPath) Span() (float64, float64) {
	if len(tp.Times) == 0 {
		return 0, 0
	}
	return tp.Times[0], tp.Times[len(tp.Times)-1]
}

// Paths groups records by user and converts each sequence into a TimedPath
// using the AP positions in aps. Records referencing unknown APs are
// skipped. Each user's collection times are exactly its association times —
// the asynchronous schedule the tracker consumes.
func Paths(records []Record, aps []AP) map[string]TimedPath {
	idx := apIndex(aps)
	grouped := make(map[string]*TimedPath)
	for _, r := range records {
		pos, ok := idx[r.AP]
		if !ok {
			continue
		}
		tp := grouped[r.User]
		if tp == nil {
			tp = &TimedPath{}
			grouped[r.User] = tp
		}
		tp.Times = append(tp.Times, r.Time)
		tp.Points = append(tp.Points, pos)
	}
	out := make(map[string]TimedPath, len(grouped))
	for user, tp := range grouped {
		out[user] = *tp
	}
	return out
}

// MapRect returns a copy of tp with positions affinely mapped from the
// rectangle from onto the rectangle to — the paper divides its AP landmark
// region into a 30 by 30 grid hosting the simulated sensor field.
func (tp TimedPath) MapRect(from, to geom.Rect) TimedPath {
	sx := to.Width() / from.Width()
	sy := to.Height() / from.Height()
	out := TimedPath{
		Times:  append([]float64(nil), tp.Times...),
		Points: make([]geom.Point, len(tp.Points)),
	}
	for i, p := range tp.Points {
		out.Points[i] = geom.Pt(
			to.Min.X+(p.X-from.Min.X)*sx,
			to.Min.Y+(p.Y-from.Min.Y)*sy,
		)
	}
	return out
}
