package brief

import (
	"testing"

	"fluxtrack/internal/core"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/traffic"
)

func scenario(t testing.TB, seed uint64) *core.Scenario {
	t.Helper()
	sc, err := core.NewScenario(core.ScenarioConfig{}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestBriefValidation(t *testing.T) {
	sc := scenario(t, 1)
	if _, err := Brief(sc.Network(), sc.Model(), []float64{1}, 1, Options{}); err == nil {
		t.Error("flux length mismatch must error")
	}
	flux := make([]float64, sc.Network().Len())
	if _, err := Brief(sc.Network(), sc.Model(), flux, 0, Options{}); err == nil {
		t.Error("zero maxUsers must error")
	}
}

func TestBriefZeroFlux(t *testing.T) {
	sc := scenario(t, 2)
	flux := make([]float64, sc.Network().Len())
	dets, err := Brief(sc.Network(), sc.Model(), flux, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 0 {
		t.Errorf("zero flux produced %d detections", len(dets))
	}
}

func TestBriefSingleUser(t *testing.T) {
	sc := scenario(t, 3)
	user := traffic.User{Pos: geom.Pt(11, 19), Stretch: 2, Active: true}
	flux, err := sc.GroundFlux([]traffic.User{user})
	if err != nil {
		t.Fatal(err)
	}
	dets, err := Brief(sc.Network(), sc.Model(), flux, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 {
		t.Fatalf("got %d detections, want 1", len(dets))
	}
	if d := dets[0].Pos.Dist(user.Pos); d > 1.5 {
		t.Errorf("detection at %v is %.2f from truth %v", dets[0].Pos, d, user.Pos)
	}
	if dets[0].Stretch <= 0 {
		t.Errorf("fitted stretch = %v, want positive", dets[0].Stretch)
	}
}

func TestBriefThreeUsersRecursive(t *testing.T) {
	// The Figure 4 scenario: three users with mixed traffic; the recursive
	// subtraction must recover all three despite flux cumulation.
	sc := scenario(t, 4)
	users := []traffic.User{
		{Pos: geom.Pt(7, 8), Stretch: 3, Active: true},
		{Pos: geom.Pt(22, 10), Stretch: 2, Active: true},
		{Pos: geom.Pt(14, 24), Stretch: 1.5, Active: true},
	}
	flux, err := sc.GroundFlux(users)
	if err != nil {
		t.Fatal(err)
	}
	dets, err := Brief(sc.Network(), sc.Model(), flux, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 3 {
		t.Fatalf("got %d detections, want 3", len(dets))
	}
	// Every user matched by some detection within 3 units (10% of the
	// field side; residual contamination shifts later peaks slightly).
	for _, u := range users {
		best := 1e18
		for _, d := range dets {
			if dd := d.Pos.Dist(u.Pos); dd < best {
				best = dd
			}
		}
		if best > 3.0 {
			t.Errorf("user at %v unmatched: nearest detection %.2f away", u.Pos, best)
		}
	}
	// Residual energy must decrease monotonically across rounds.
	for i := 1; i < len(dets); i++ {
		if dets[i].ResidualEnergy > dets[i-1].ResidualEnergy {
			t.Errorf("residual energy increased: round %d %v > round %d %v",
				i, dets[i].ResidualEnergy, i-1, dets[i-1].ResidualEnergy)
		}
	}
	// Detections come strongest-first (peak flux non-increasing).
	for i := 1; i < len(dets); i++ {
		if dets[i].PeakFlux > dets[i-1].PeakFlux {
			t.Errorf("peak flux increased across rounds: %v after %v",
				dets[i].PeakFlux, dets[i-1].PeakFlux)
		}
	}
}

func TestBriefStopsEarlyOnCleanMap(t *testing.T) {
	// Asking for more users than exist: the energy stop criterion must cut
	// the recursion short instead of inventing phantom users.
	sc := scenario(t, 5)
	user := traffic.User{Pos: geom.Pt(15, 15), Stretch: 2, Active: true}
	flux, err := sc.GroundFlux([]traffic.User{user})
	if err != nil {
		t.Fatal(err)
	}
	dets, err := Brief(sc.Network(), sc.Model(), flux, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 5 {
		t.Errorf("briefing produced all 5 requested detections for a single user; expected early stop (got %d)", len(dets))
	}
}

func BenchmarkBriefThreeUsers(b *testing.B) {
	sc := scenario(b, 6)
	users := traffic.RandomUsers(sc.Field(), 3, 1, 3, rng.New(7))
	flux, err := sc.GroundFlux(users)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Brief(sc.Network(), sc.Model(), flux, 3, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
