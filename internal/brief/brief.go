// Package brief implements the full-map briefing method of §3.C: with the
// flux of the whole network visible, users are identified in rounds — find
// the global traffic peak, place a user there, estimate its traffic stretch
// by fitting the theoretical model, subtract the user's model flux from the
// map, repeat. It doubles as the attack's expensive baseline (sniffing every
// node) against which the sparse-sampling NLS fit is compared.
package brief

import (
	"fmt"

	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/network"
)

// Detection is one identified mobile user.
type Detection struct {
	Pos            geom.Point // estimated position (the peak node's location)
	Stretch        float64    // fitted integrated stretch factor c = s/r
	PeakFlux       float64    // flux at the peak before subtraction
	ResidualEnergy float64    // flux energy left in the map after this round
}

// Options tunes the briefing recursion.
type Options struct {
	// MinHops excludes nodes closer than this many hops to the peak from
	// the stretch fit; the model fits poorly very close to a sink
	// (default 2).
	MinHops int
	// StopEnergyFrac stops early when the residual energy drops below this
	// fraction of the original (default 0.02).
	StopEnergyFrac float64
	// SuppressHops excludes nodes within this many hops of an already
	// detected peak from later peak selection: imperfect subtraction
	// leaves ring residue around a detected user that would otherwise be
	// re-detected as a phantom second user (default 3).
	SuppressHops int
	// StopPeakFrac stops when the next peak falls below this fraction of
	// the first round's peak — later "peaks" of that size are subtraction
	// residue, not users (default 0.12).
	StopPeakFrac float64
}

func (o Options) withDefaults() Options {
	if o.MinHops <= 0 {
		o.MinHops = 2
	}
	if o.StopEnergyFrac <= 0 {
		o.StopEnergyFrac = 0.02
	}
	if o.SuppressHops <= 0 {
		o.SuppressHops = 3
	}
	if o.StopPeakFrac <= 0 {
		o.StopPeakFrac = 0.12
	}
	return o
}

// Brief identifies up to maxUsers users from the full per-node flux map.
// It returns the detections in discovery order (strongest traffic first);
// fewer than maxUsers are returned when the residual energy collapses
// early.
func Brief(net *network.Network, m *fluxmodel.Model, flux []float64, maxUsers int, opts Options) ([]Detection, error) {
	if len(flux) != net.Len() {
		return nil, fmt.Errorf("brief: flux length %d, want %d", len(flux), net.Len())
	}
	if maxUsers <= 0 {
		return nil, fmt.Errorf("brief: maxUsers must be positive, got %d", maxUsers)
	}
	opts = opts.withDefaults()

	residual := append([]float64(nil), flux...)
	initialEnergy := energy(residual)
	if initialEnergy == 0 {
		return nil, nil
	}

	suppressed := make([]bool, net.Len())
	detections := make([]Detection, 0, maxUsers)
	var firstPeak float64
	for round := 0; round < maxUsers; round++ {
		peakIdx, peakFlux := peakExcluding(residual, suppressed)
		if peakIdx < 0 || peakFlux <= 0 {
			break
		}
		if round == 0 {
			firstPeak = peakFlux
		} else if peakFlux < opts.StopPeakFrac*firstPeak {
			break
		}
		pos := net.Pos(peakIdx)

		// Fit the stretch factor over nodes at least MinHops away from the
		// peak: c = <g, residual> / <g, g>, the single-column least squares
		// with non-negativity clamp.
		hops := net.HopsFrom(peakIdx)
		var num, den float64
		for i := 0; i < net.Len(); i++ {
			if hops[i] < opts.MinHops {
				continue
			}
			g := m.Kernel(pos, net.Pos(i))
			num += g * residual[i]
			den += g * g
		}
		var c float64
		if den > 0 && num > 0 {
			c = num / den
		}

		// Subtract the identified user's model flux, clamping at zero; the
		// peak node and its inner rings carry the user's full relayed
		// traffic, which the model underestimates, so remove them outright
		// and suppress the surrounding rings from later peak selection.
		for i := 0; i < net.Len(); i++ {
			if hops[i] >= 0 && hops[i] <= opts.SuppressHops {
				suppressed[i] = true
			}
			if hops[i] >= 0 && hops[i] < opts.MinHops {
				residual[i] = 0
				continue
			}
			residual[i] -= c * m.Kernel(pos, net.Pos(i))
			if residual[i] < 0 {
				residual[i] = 0
			}
		}

		res := energy(residual)
		detections = append(detections, Detection{
			Pos:            pos,
			Stretch:        c,
			PeakFlux:       peakFlux,
			ResidualEnergy: res,
		})
		if res < opts.StopEnergyFrac*initialEnergy {
			break
		}
	}
	return detections, nil
}

func peak(flux []float64) (int, float64) {
	return peakExcluding(flux, nil)
}

func peakExcluding(flux []float64, excluded []bool) (int, float64) {
	idx, best := -1, 0.0
	for i, f := range flux {
		if excluded != nil && excluded[i] {
			continue
		}
		if idx < 0 || f > best {
			idx, best = i, f
		}
	}
	return idx, best
}

func energy(flux []float64) float64 {
	var s float64
	for _, f := range flux {
		s += f * f
	}
	return s
}
