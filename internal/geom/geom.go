// Package geom provides the planar geometry primitives used throughout the
// flux-fingerprinting pipeline: points, vectors, rectangles, and the
// ray/boundary intersection that defines the model parameter l (the
// distance from a mobile sink to the network boundary along the direction
// of an observed node, §3.B of the paper).
//
// Everything is value-typed and allocation-free: Point and Vec are plain
// float64 pairs, Rect operations (Contains, Clamp, Center, Diameter) are
// pure functions, and RayToBoundary walks the four sides directly. The
// deployment generators (internal/deploy), the flux model
// (internal/fluxmodel), and the samplers of internal/rng all build on these
// types, so their conventions — origin at Rect.Min, y growing upward —
// propagate through the whole repository.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by the vector v.
func (p Point) Add(v Vec) Point { return Point{X: p.X + v.DX, Y: p.Y + v.DY} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vec { return Vec{DX: p.X - q.X, DY: p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root on hot paths such as unit-disk neighbor construction.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Vec is a displacement in the plane.
type Vec struct {
	DX float64 `json:"dx"`
	DY float64 `json:"dy"`
}

// Norm returns the Euclidean length of v.
func (v Vec) Norm() float64 { return math.Hypot(v.DX, v.DY) }

// Scale returns v scaled by k.
func (v Vec) Scale(k float64) Vec { return Vec{DX: v.DX * k, DY: v.DY * k} }

// Unit returns the unit vector in the direction of v, and false when v is the
// zero vector (in which case the zero vector is returned).
func (v Vec) Unit() (Vec, bool) {
	n := v.Norm()
	if n == 0 {
		return Vec{}, false
	}
	return Vec{DX: v.DX / n, DY: v.DY / n}, true
}

// Dot returns the dot product of v and w.
func (v Vec) Dot(w Vec) float64 { return v.DX*w.DX + v.DY*w.DY }

// Rect is an axis-aligned rectangle. It is the canonical shape of the sensor
// field in the paper's evaluation (a 30 by 30 square field). Min is the
// lower-left corner and Max the upper-right corner.
type Rect struct {
	Min Point `json:"min"`
	Max Point `json:"max"`
}

// NewRect returns the axis-aligned rectangle spanned by the two corner
// points, normalizing the corner order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{X: math.Min(a.X, b.X), Y: math.Min(a.Y, b.Y)},
		Max: Point{X: math.Max(a.X, b.X), Y: math.Max(a.Y, b.Y)},
	}
}

// Square returns the square field [0, side] x [0, side].
func Square(side float64) Rect {
	return Rect{Min: Point{}, Max: Point{X: side, Y: side}}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Diameter returns the length of the rectangle diagonal. The paper reports
// localization errors as fractions of the field diameter.
func (r Rect) Diameter() float64 { return r.Min.Dist(r.Max) }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{X: (r.Min.X + r.Max.X) / 2, Y: (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns the point of r nearest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		Y: math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}

// RayExit returns the distance t >= 0 from origin to the boundary of r along
// the direction dir, i.e. the largest t such that origin + t*dir still lies
// in r. This is the parameter l of the flux model: the distance from the
// mobile sink to the network boundary along the direction of a node.
//
// origin must lie inside r and dir must be non-zero; otherwise ok is false.
// The computation is the standard slab method specialized to a ray known to
// start inside the box, so exactly one positive exit parameter exists.
func (r Rect) RayExit(origin Point, dir Vec) (t float64, ok bool) {
	if !r.Contains(origin) {
		return 0, false
	}
	u, ok := dir.Unit()
	if !ok {
		return 0, false
	}
	t = math.Inf(1)
	// Horizontal slabs.
	if u.DX > 0 {
		t = math.Min(t, (r.Max.X-origin.X)/u.DX)
	} else if u.DX < 0 {
		t = math.Min(t, (r.Min.X-origin.X)/u.DX)
	}
	// Vertical slabs.
	if u.DY > 0 {
		t = math.Min(t, (r.Max.Y-origin.Y)/u.DY)
	} else if u.DY < 0 {
		t = math.Min(t, (r.Min.Y-origin.Y)/u.DY)
	}
	if math.IsInf(t, 1) {
		// dir was zero after normalization; cannot happen given ok above,
		// but guard against degenerate rectangles with zero extent.
		return 0, false
	}
	return math.Max(t, 0), true
}

// BoundaryDistThrough returns the distance l from origin to the boundary of
// r along the ray that passes through the point via. When via coincides with
// origin there is no defined direction and ok is false.
func (r Rect) BoundaryDistThrough(origin, via Point) (l float64, ok bool) {
	return r.RayExit(origin, via.Sub(origin))
}

// ExitSlabs caches the slab offsets of a rectangle around a fixed interior
// origin, so repeated boundary-exit queries from that origin cost two
// divisions and two comparisons each instead of a full RayExit (containment
// check, normalization, four slab branches). The flux model's vectorized
// kernel builds one ExitSlabs per sink and queries it once per sample point.
type ExitSlabs struct {
	xhi, xlo float64 // Max.X - origin.X, Min.X - origin.X
	yhi, ylo float64 // Max.Y - origin.Y, Min.Y - origin.Y
}

// SlabsAt returns the cached slab offsets of r around origin. The origin
// must lie inside r for Scale to be meaningful, mirroring RayExit's
// contract; SlabsAt itself does not check.
func (r Rect) SlabsAt(origin Point) ExitSlabs {
	return ExitSlabs{
		xhi: r.Max.X - origin.X, xlo: r.Min.X - origin.X,
		yhi: r.Max.Y - origin.Y, ylo: r.Min.Y - origin.Y,
	}
}

// Scale returns the closed-form slab parameter τ: the largest τ >= 0 such
// that origin + τ·(dx, dy) still lies in the rectangle. The direction is
// deliberately NOT normalized — for the flux model's ray from a sink through
// a sample point at distance d, the boundary distance is simply l = τ·d, so
// the kernel g = (l² − d²)/(2d) collapses to d(τ²−1)/2 with no unit vector
// and no second square root. A zero direction returns +Inf; callers treat
// that as "sample point coincides with the origin" and fall back.
func (s ExitSlabs) Scale(dx, dy float64) float64 {
	t := math.Inf(1)
	if dx > 0 {
		t = s.xhi / dx
	} else if dx < 0 {
		t = s.xlo / dx
	}
	if dy > 0 {
		if ty := s.yhi / dy; ty < t {
			t = ty
		}
	} else if dy < 0 {
		if ty := s.ylo / dy; ty < t {
			t = ty
		}
	}
	return t
}

// Lerp linearly interpolates between a and b; t=0 yields a, t=1 yields b.
func Lerp(a, b Point, t float64) Point {
	return Point{X: a.X + (b.X-a.X)*t, Y: a.Y + (b.Y-a.Y)*t}
}

// PolylineLength returns the total length of the polyline through pts.
func PolylineLength(pts []Point) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += pts[i-1].Dist(pts[i])
	}
	return total
}

// PointAlong returns the point reached after traveling dist along the
// polyline pts from its start. Distances beyond the end clamp to the final
// vertex; an empty polyline returns the zero point and ok=false.
func PointAlong(pts []Point, dist float64) (Point, bool) {
	if len(pts) == 0 {
		return Point{}, false
	}
	if dist <= 0 {
		return pts[0], true
	}
	for i := 1; i < len(pts); i++ {
		seg := pts[i-1].Dist(pts[i])
		if dist <= seg {
			if seg == 0 {
				return pts[i], true
			}
			return Lerp(pts[i-1], pts[i], dist/seg), true
		}
		dist -= seg
	}
	return pts[len(pts)-1], true
}
