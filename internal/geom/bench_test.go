package geom

import "testing"

// benchSink prevents the compiler from eliding the benchmarked calls.
var benchSink float64

// BenchmarkBoundaryDistThrough measures the ray-boundary intersection that
// sits inside every kernel evaluation of the flux model: one call per
// (candidate, sample point) pair, millions per localization run.
func BenchmarkBoundaryDistThrough(b *testing.B) {
	r := Square(1000)
	origins := [...]Point{Pt(500, 500), Pt(10, 990), Pt(730, 40), Pt(250, 666)}
	vias := [...]Point{Pt(3, 3), Pt(999, 500), Pt(500, 1), Pt(123, 456)}
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		l, ok := r.BoundaryDistThrough(origins[i%len(origins)], vias[(i+1)%len(vias)])
		if ok {
			acc += l
		}
	}
	benchSink = acc
}

// BenchmarkRayExit isolates the primitive underneath BoundaryDistThrough.
func BenchmarkRayExit(b *testing.B) {
	r := Square(1000)
	dirs := [...]Vec{{DX: 1, DY: 0.3}, {DX: -0.2, DY: 1}, {DX: -1, DY: -1}, {DX: 0.8, DY: -0.1}}
	origin := Pt(400, 600)
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		l, ok := r.RayExit(origin, dirs[i%len(dirs)])
		if ok {
			acc += l
		}
	}
	benchSink = acc
}
