package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Pt(1, 2), Pt(1, 2), 0},
		{"unit x", Pt(0, 0), Pt(1, 0), 1},
		{"unit y", Pt(0, 0), Pt(0, 1), 1},
		{"3-4-5", Pt(0, 0), Pt(3, 4), 5},
		{"negative coords", Pt(-1, -1), Pt(2, 3), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
			if got := tt.p.Dist2(tt.q); !almostEqual(got, tt.want*tt.want, 1e-9) {
				t.Errorf("Dist2(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want*tt.want)
			}
		})
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if anyNaNInf(ax, ay, bx, by) {
			return true
		}
		a, b := Pt(ax, ay), Pt(bx, by)
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Pt(float64(ax), float64(ay))
		b := Pt(float64(bx), float64(by))
		c := Pt(float64(cx), float64(cy))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func anyNaNInf(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func TestVecUnit(t *testing.T) {
	tests := []struct {
		name   string
		v      Vec
		wantOK bool
	}{
		{"zero vector", Vec{}, false},
		{"x axis", Vec{DX: 5}, true},
		{"diagonal", Vec{DX: 3, DY: -4}, true},
		{"tiny", Vec{DX: 1e-30, DY: 0}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			u, ok := tt.v.Unit()
			if ok != tt.wantOK {
				t.Fatalf("Unit() ok = %v, want %v", ok, tt.wantOK)
			}
			if ok && !almostEqual(u.Norm(), 1, 1e-12) {
				t.Errorf("Unit() norm = %v, want 1", u.Norm())
			}
		})
	}
}

func TestVecDot(t *testing.T) {
	v := Vec{DX: 1, DY: 2}
	w := Vec{DX: 3, DY: -1}
	if got := v.Dot(w); got != 1 {
		t.Errorf("Dot = %v, want 1", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Pt(30, 30), Pt(0, 0)) // reversed corners must normalize
	if r.Min != Pt(0, 0) || r.Max != Pt(30, 30) {
		t.Fatalf("NewRect did not normalize corners: %+v", r)
	}
	if got := r.Width(); got != 30 {
		t.Errorf("Width = %v, want 30", got)
	}
	if got := r.Height(); got != 30 {
		t.Errorf("Height = %v, want 30", got)
	}
	if got := r.Area(); got != 900 {
		t.Errorf("Area = %v, want 900", got)
	}
	if got := r.Diameter(); !almostEqual(got, 30*math.Sqrt2, 1e-9) {
		t.Errorf("Diameter = %v, want %v", got, 30*math.Sqrt2)
	}
	if got := r.Center(); got != Pt(15, 15) {
		t.Errorf("Center = %v, want (15,15)", got)
	}
}

func TestRectContainsClamp(t *testing.T) {
	r := Square(10)
	tests := []struct {
		p        Point
		contains bool
		clamped  Point
	}{
		{Pt(5, 5), true, Pt(5, 5)},
		{Pt(0, 0), true, Pt(0, 0)},
		{Pt(10, 10), true, Pt(10, 10)},
		{Pt(-1, 5), false, Pt(0, 5)},
		{Pt(11, 12), false, Pt(10, 10)},
		{Pt(5, -3), false, Pt(5, 0)},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.contains {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.contains)
		}
		if got := r.Clamp(tt.p); got != tt.clamped {
			t.Errorf("Clamp(%v) = %v, want %v", tt.p, got, tt.clamped)
		}
	}
}

func TestRayExitAxisDirections(t *testing.T) {
	r := Square(10)
	origin := Pt(3, 4)
	tests := []struct {
		name string
		dir  Vec
		want float64
	}{
		{"east", Vec{DX: 1}, 7},
		{"west", Vec{DX: -1}, 3},
		{"north", Vec{DY: 1}, 6},
		{"south", Vec{DY: -1}, 4},
		{"scaled east", Vec{DX: 10}, 7}, // direction magnitude must not matter
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := r.RayExit(origin, tt.dir)
			if !ok {
				t.Fatal("RayExit reported not ok")
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("RayExit = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRayExitDiagonal(t *testing.T) {
	r := Square(10)
	// From the center along the main diagonal the exit is half the diagonal.
	got, ok := r.RayExit(Pt(5, 5), Vec{DX: 1, DY: 1})
	if !ok {
		t.Fatal("RayExit reported not ok")
	}
	want := 5 * math.Sqrt2
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("RayExit = %v, want %v", got, want)
	}
}

func TestRayExitDegenerate(t *testing.T) {
	r := Square(10)
	if _, ok := r.RayExit(Pt(5, 5), Vec{}); ok {
		t.Error("RayExit with zero direction must fail")
	}
	if _, ok := r.RayExit(Pt(-1, 5), Vec{DX: 1}); ok {
		t.Error("RayExit with outside origin must fail")
	}
	// Origin on the boundary heading outward exits immediately.
	got, ok := r.RayExit(Pt(10, 5), Vec{DX: 1})
	if !ok || got != 0 {
		t.Errorf("RayExit from boundary outward = (%v, %v), want (0, true)", got, ok)
	}
}

// TestRayExitProperty checks that the computed exit point lies on the
// rectangle boundary for random interior origins and directions.
func TestRayExitProperty(t *testing.T) {
	r := Square(30)
	f := func(ox, oy, dx, dy uint16) bool {
		origin := Pt(float64(ox%3000)/100, float64(oy%3000)/100)
		dir := Vec{DX: float64(int(dx) - 32768), DY: float64(int(dy) - 32768)}
		if dir.Norm() == 0 {
			return true
		}
		tExit, ok := r.RayExit(origin, dir)
		if !ok {
			return false
		}
		u, _ := dir.Unit()
		exit := origin.Add(u.Scale(tExit))
		onBoundary := almostEqual(exit.X, 0, 1e-9) || almostEqual(exit.X, 30, 1e-9) ||
			almostEqual(exit.Y, 0, 1e-9) || almostEqual(exit.Y, 30, 1e-9)
		return onBoundary && r.Contains(Pt(r.Clamp(exit).X, r.Clamp(exit).Y))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBoundaryDistThrough(t *testing.T) {
	r := Square(30)
	// Sink at (10,15); node at (20,15): the ray continues east and exits at
	// x=30, so l = 20.
	l, ok := r.BoundaryDistThrough(Pt(10, 15), Pt(20, 15))
	if !ok {
		t.Fatal("BoundaryDistThrough reported not ok")
	}
	if !almostEqual(l, 20, 1e-12) {
		t.Errorf("l = %v, want 20", l)
	}
	// Same point has no direction.
	if _, ok := r.BoundaryDistThrough(Pt(10, 15), Pt(10, 15)); ok {
		t.Error("BoundaryDistThrough with coincident points must fail")
	}
}

// TestBoundaryDistAtLeastNodeDist verifies l >= d for nodes inside the field,
// which the flux model relies on (flux must be non-negative).
func TestBoundaryDistAtLeastNodeDist(t *testing.T) {
	r := Square(30)
	f := func(sx, sy, nx, ny uint16) bool {
		sink := Pt(float64(sx%3000)/100, float64(sy%3000)/100)
		node := Pt(float64(nx%3000)/100, float64(ny%3000)/100)
		if sink == node {
			return true
		}
		l, ok := r.BoundaryDistThrough(sink, node)
		if !ok {
			return false
		}
		return l >= sink.Dist(node)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp t=0 = %v, want %v", got, a)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp t=1 = %v, want %v", got, b)
	}
	if got := Lerp(a, b, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp t=0.5 = %v, want (5,10)", got)
	}
}

func TestPolylineLength(t *testing.T) {
	tests := []struct {
		name string
		pts  []Point
		want float64
	}{
		{"empty", nil, 0},
		{"single", []Point{Pt(1, 1)}, 0},
		{"L shape", []Point{Pt(0, 0), Pt(3, 0), Pt(3, 4)}, 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := PolylineLength(tt.pts); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("PolylineLength = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPointAlong(t *testing.T) {
	path := []Point{Pt(0, 0), Pt(10, 0), Pt(10, 10)}
	tests := []struct {
		name string
		dist float64
		want Point
	}{
		{"start", 0, Pt(0, 0)},
		{"negative clamps to start", -5, Pt(0, 0)},
		{"mid first segment", 5, Pt(5, 0)},
		{"vertex", 10, Pt(10, 0)},
		{"mid second segment", 15, Pt(10, 5)},
		{"end", 20, Pt(10, 10)},
		{"beyond end clamps", 100, Pt(10, 10)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := PointAlong(path, tt.dist)
			if !ok {
				t.Fatal("PointAlong reported not ok")
			}
			if got.Dist(tt.want) > 1e-12 {
				t.Errorf("PointAlong(%v) = %v, want %v", tt.dist, got, tt.want)
			}
		})
	}
	if _, ok := PointAlong(nil, 1); ok {
		t.Error("PointAlong(nil) must report not ok")
	}
}
