package geom

// Quadtree is a bucketed point quadtree over a rectangular region,
// supporting deterministic k-nearest-neighbor queries. The coarse-to-fine
// candidate search (internal/fingerprint) uses it to map candidate
// positions onto fingerprint grid cells; nothing in it is specific to that
// use — it indexes arbitrary (id, point) pairs.
//
// Determinism contract: KNN orders results by (squared distance, id)
// lexicographically, a total order, so the returned neighbors are a pure
// function of the inserted set and the query — never of insertion order,
// traversal order, or any scheduling. Equal-distance ties always resolve to
// the lowest id, which is what lets the candidate shortlist of internal/fit
// stay byte-identical between runs (see DESIGN.md §6.5).
//
// A Quadtree is not safe for concurrent mutation, but any number of
// goroutines may run KNN concurrently once inserts are done: queries only
// read the tree and write into caller-owned buffers.
type Quadtree struct {
	root qtNode
	n    int
}

// qtBucket is the leaf capacity before a split. Small enough that leaf
// scans stay cheap, large enough that degenerate splits are rare.
const qtBucket = 8

// qtMaxDepth bounds the tree depth so coincident (duplicate) points, which
// can never be separated by splitting, degrade to one growing leaf bucket
// instead of infinite recursion.
const qtMaxDepth = 24

// qtEntry is one indexed point.
type qtEntry struct {
	id int
	p  Point
}

// qtNode is either a leaf (children nil, pts holds entries) or an internal
// node with exactly four children ordered SW, SE, NW, NE.
type qtNode struct {
	bounds   Rect
	children []qtNode // nil for a leaf; length 4 otherwise
	pts      []qtEntry
}

// NewQuadtree returns an empty quadtree over bounds. Points inserted
// outside bounds are routed to the nearest boundary cell but keep their
// true coordinates for distance computations, so queries remain exact.
func NewQuadtree(bounds Rect) *Quadtree {
	return &Quadtree{root: qtNode{bounds: bounds}}
}

// Len returns the number of inserted points.
func (q *Quadtree) Len() int { return q.n }

// Insert adds point p under the given id. Ids need not be unique or dense,
// but the KNN tie-break is only deterministic when ids order the points
// totally — give duplicated positions distinct ids.
func (q *Quadtree) Insert(id int, p Point) {
	q.root.insert(qtEntry{id: id, p: p}, 0)
	q.n++
}

// insert routes e to a leaf, splitting full leaves until qtMaxDepth.
func (nd *qtNode) insert(e qtEntry, depth int) {
	for {
		if nd.children == nil {
			if len(nd.pts) < qtBucket || depth >= qtMaxDepth {
				nd.pts = append(nd.pts, e)
				return
			}
			nd.split()
		}
		nd = &nd.children[nd.quadrant(e.p)]
		depth++
	}
}

// quadrant returns the child index for p: x and y are compared against the
// node center with >= routing to the east/north half, so boundary points
// have one deterministic home.
func (nd *qtNode) quadrant(p Point) int {
	c := nd.bounds.Center()
	i := 0
	if p.X >= c.X {
		i |= 1
	}
	if p.Y >= c.Y {
		i |= 2
	}
	return i
}

// split turns a leaf into an internal node and redistributes its bucket.
func (nd *qtNode) split() {
	c := nd.bounds.Center()
	min, max := nd.bounds.Min, nd.bounds.Max
	nd.children = []qtNode{
		{bounds: Rect{Min: min, Max: c}},                         // SW
		{bounds: Rect{Min: Pt(c.X, min.Y), Max: Pt(max.X, c.Y)}}, // SE
		{bounds: Rect{Min: Pt(min.X, c.Y), Max: Pt(c.X, max.Y)}}, // NW
		{bounds: Rect{Min: c, Max: max}},                         // NE
	}
	pts := nd.pts
	nd.pts = nil
	for _, e := range pts {
		nd.children[nd.quadrant(e.p)].pts = append(nd.children[nd.quadrant(e.p)].pts, e)
	}
}

// Neighbor is one KNN result.
type Neighbor struct {
	ID    int
	P     Point
	Dist2 float64 // squared Euclidean distance to the query point
}

// better reports whether (d2, id) orders strictly before n — the total
// order all KNN results obey.
func (n Neighbor) better(d2 float64, id int) bool {
	if d2 != n.Dist2 {
		return d2 < n.Dist2
	}
	return id < n.ID
}

// minDist2 returns the squared distance from p to the nearest point of r
// (zero when p is inside r).
func minDist2(r Rect, p Point) float64 {
	dx := 0.0
	if p.X < r.Min.X {
		dx = r.Min.X - p.X
	} else if p.X > r.Max.X {
		dx = p.X - r.Max.X
	}
	dy := 0.0
	if p.Y < r.Min.Y {
		dy = r.Min.Y - p.Y
	} else if p.Y > r.Max.Y {
		dy = p.Y - r.Max.Y
	}
	return dx*dx + dy*dy
}

// KNN returns the k nearest inserted points to p, ordered by
// (squared distance, id) ascending, appended into dst (pass dst[:0] to
// reuse a buffer; a nil dst allocates). Fewer than k points are returned
// only when the tree holds fewer than k. The query never mutates the tree,
// so concurrent KNN calls with distinct dst buffers are safe.
func (q *Quadtree) KNN(p Point, k int, dst []Neighbor) []Neighbor {
	dst = dst[:0]
	if k <= 0 || q.n == 0 {
		return dst
	}
	return q.root.knn(p, k, dst)
}

// Nearest returns the single nearest inserted point to p; ok is false for
// an empty tree. Ties resolve to the lowest id.
func (q *Quadtree) Nearest(p Point) (Neighbor, bool) {
	var buf [1]Neighbor
	res := q.KNN(p, 1, buf[:0])
	if len(res) == 0 {
		return Neighbor{}, false
	}
	return res[0], true
}

// knn walks the subtree, maintaining dst as the sorted current-best list of
// at most k neighbors. Subtrees are pruned only when their bounding box is
// strictly farther than the current worst: an equal-distance box may still
// hold a lower id, which the tie-break must surface.
func (nd *qtNode) knn(p Point, k int, dst []Neighbor) []Neighbor {
	if len(dst) == k && minDist2(nd.bounds, p) > dst[k-1].Dist2 {
		return dst
	}
	if nd.children == nil {
		for _, e := range nd.pts {
			d2 := p.Dist2(e.p)
			if len(dst) == k && !dst[k-1].better(d2, e.id) {
				continue
			}
			// Insertion sort by (d2, id); drop the worst when over k.
			i := len(dst)
			if i < k {
				dst = append(dst, Neighbor{})
			} else {
				i = k - 1
			}
			for i > 0 && dst[i-1].better(d2, e.id) {
				dst[i] = dst[i-1]
				i--
			}
			dst[i] = Neighbor{ID: e.id, P: e.p, Dist2: d2}
		}
		return dst
	}
	// Visit children nearest-box first so the worst bound tightens early;
	// the visit order affects only pruning efficiency, never the result.
	var order [4]int
	var dist [4]float64
	for i := range nd.children {
		order[i] = i
		dist[i] = minDist2(nd.children[i].bounds, p)
	}
	for i := 1; i < 4; i++ {
		for j := i; j > 0 && dist[order[j]] < dist[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, ci := range order {
		dst = nd.children[ci].knn(p, k, dst)
	}
	return dst
}
