package geom

import (
	"math"
	"testing"

	"testing/quick"
)

// TestExitSlabsMatchesRayExit checks the closed-form slab parameter against
// the generic RayExit primitive: for any interior origin and any sample
// point, τ·|v| must equal the ray-exit distance along v = point − origin.
func TestExitSlabsMatchesRayExit(t *testing.T) {
	r := Square(30)
	origins := []Point{
		Pt(15, 15), Pt(0.001, 0.001), Pt(29.999, 15), Pt(7, 23.5),
		Pt(0, 0), Pt(30, 30), Pt(15, 0),
	}
	targets := []Point{
		Pt(1, 1), Pt(29, 2), Pt(15, 15), Pt(0, 30), Pt(22.5, 7.25),
		Pt(15, 0.0001), Pt(29.9999, 29.9999),
	}
	for _, o := range origins {
		slabs := r.SlabsAt(o)
		for _, p := range targets {
			if p == o {
				continue
			}
			dx, dy := p.X-o.X, p.Y-o.Y
			tau := slabs.Scale(dx, dy)
			got := tau * math.Sqrt(dx*dx+dy*dy)
			want, ok := r.BoundaryDistThrough(o, p)
			if !ok {
				t.Fatalf("BoundaryDistThrough(%v, %v) not ok", o, p)
			}
			tol := 1e-9 * math.Max(want, 1)
			if math.Abs(got-want) > tol {
				t.Errorf("origin %v point %v: slab l = %v, RayExit l = %v", o, p, got, want)
			}
		}
	}
}

// TestExitSlabsQuick fuzzes random interior origin/point pairs.
func TestExitSlabsQuick(t *testing.T) {
	r := Square(30)
	f := func(a, b, c, d float64) bool {
		frac := func(v float64) float64 {
			v = math.Abs(v)
			return v - math.Floor(v)
		}
		o := Pt(30*frac(a), 30*frac(b))
		p := Pt(30*frac(c), 30*frac(d))
		if o == p {
			return true
		}
		dx, dy := p.X-o.X, p.Y-o.Y
		got := r.SlabsAt(o).Scale(dx, dy) * math.Sqrt(dx*dx+dy*dy)
		want, ok := r.BoundaryDistThrough(o, p)
		return ok && math.Abs(got-want) <= 1e-9*math.Max(want, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestExitSlabsZeroDirection: the degenerate direction reports +Inf so the
// caller can detect "point == origin" without a separate comparison.
func TestExitSlabsZeroDirection(t *testing.T) {
	r := Square(10)
	if got := r.SlabsAt(Pt(5, 5)).Scale(0, 0); !math.IsInf(got, 1) {
		t.Errorf("zero direction Scale = %v, want +Inf", got)
	}
}

// TestExitSlabsTauAtLeastOneInside: for an interior target point the exit
// parameter is >= 1 (the ray leaves the field at or beyond the point), which
// is what makes the fused kernel g = d(τ²−1)/2 non-negative.
func TestExitSlabsTauAtLeastOneInside(t *testing.T) {
	r := Square(30)
	slabs := r.SlabsAt(Pt(12, 7))
	for _, p := range []Point{Pt(1, 1), Pt(29, 29), Pt(12, 7.0001), Pt(30, 7)} {
		tau := slabs.Scale(p.X-12, p.Y-7)
		if tau < 1 {
			t.Errorf("interior point %v: tau = %v < 1", p, tau)
		}
	}
}

func BenchmarkExitSlabsScale(b *testing.B) {
	r := Square(1000)
	slabs := r.SlabsAt(Pt(400, 600))
	dirs := [...][2]float64{{300, 90}, {-150, 300}, {-390, -599}, {80, -10}}
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		d := dirs[i%len(dirs)]
		acc += slabs.Scale(d[0], d[1])
	}
	benchSink = acc
}
