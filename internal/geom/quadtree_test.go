package geom

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

// qtSource is a tiny splitmix64 stream so the quadtree tests do not import
// internal/rng (which would create an import cycle through geom).
type qtSource struct{ state uint64 }

func (s *qtSource) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *qtSource) float64() float64 { return float64(s.next()>>11) / (1 << 53) }

// bruteKNN is the linear-scan oracle: exact k nearest by (dist2, id).
func bruteKNN(pts []Point, q Point, k int) []Neighbor {
	all := make([]Neighbor, len(pts))
	for i, p := range pts {
		all[i] = Neighbor{ID: i, P: p, Dist2: q.Dist2(p)}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dist2 != all[b].Dist2 {
			return all[a].Dist2 < all[b].Dist2
		}
		return all[a].ID < all[b].ID
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// randomPoints draws n points in the square, deliberately including exact
// duplicates and boundary/grid-line-grazing coordinates: every fourth point
// copies an earlier one and every fifth snaps to an integer lattice (which
// lands exactly on quadtree split lines).
func randomPoints(src *qtSource, n int, side float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		switch {
		case i%4 == 3 && i > 0:
			pts[i] = pts[int(src.next()%uint64(i))]
		case i%5 == 2:
			pts[i] = Pt(math.Floor(src.float64()*side), math.Floor(src.float64()*side))
		default:
			pts[i] = Pt(src.float64()*side, src.float64()*side)
		}
	}
	return pts
}

func buildTree(pts []Point, bounds Rect) *Quadtree {
	qt := NewQuadtree(bounds)
	for i, p := range pts {
		qt.Insert(i, p)
	}
	return qt
}

// TestQuadtreeKNNMatchesBruteForce is the core property test: over
// randomized point sets (with duplicates and split-line points) and
// randomized queries, KNN must agree exactly — ids, order, and distances —
// with the linear-scan oracle for every k.
func TestQuadtreeKNNMatchesBruteForce(t *testing.T) {
	src := &qtSource{state: 7}
	for trial := 0; trial < 40; trial++ {
		n := 1 + int(src.next()%200)
		pts := randomPoints(src, n, 30)
		qt := buildTree(pts, Square(30))
		if qt.Len() != n {
			t.Fatalf("trial %d: Len = %d, want %d", trial, qt.Len(), n)
		}
		var buf []Neighbor
		for _, k := range []int{1, 2, 3, 7, n, n + 5} {
			q := Pt(src.float64()*36-3, src.float64()*36-3) // queries may fall outside
			want := bruteKNN(pts, q, k)
			buf = qt.KNN(q, k, buf)
			if !reflect.DeepEqual([]Neighbor(buf), want) {
				t.Fatalf("trial %d k=%d query=%v:\n got %v\nwant %v", trial, k, q, buf, want)
			}
		}
	}
}

// TestQuadtreeKNNTieBreakIndexOrder pins the determinism contract on exact
// ties: coincident points and symmetric layouts must always surface the
// lowest id first.
func TestQuadtreeKNNTieBreakIndexOrder(t *testing.T) {
	qt := NewQuadtree(Square(10))
	// Twelve copies of the same point (forces bucket overflow on a
	// coincident set) plus a symmetric ring around the query.
	for i := 0; i < 12; i++ {
		qt.Insert(i, Pt(2, 2))
	}
	ring := []Point{Pt(6, 5), Pt(4, 5), Pt(5, 6), Pt(5, 4)}
	for i, p := range ring {
		qt.Insert(100+i, p)
	}
	got := qt.KNN(Pt(2, 2), 5, nil)
	for i, nb := range got {
		if nb.ID != i || nb.Dist2 != 0 {
			t.Fatalf("duplicate tie-break: result %d = %+v, want id %d at dist 0", i, nb, i)
		}
	}
	got = qt.KNN(Pt(5, 5), 3, nil)
	wantIDs := []int{100, 101, 102}
	for i, nb := range got {
		if nb.ID != wantIDs[i] {
			t.Fatalf("ring tie-break: got ids %v, want %v", got, wantIDs)
		}
	}
}

// TestQuadtreeOutsidePoints checks points inserted outside the bounds are
// still found exactly (they are routed to boundary cells but keep true
// coordinates).
func TestQuadtreeOutsidePoints(t *testing.T) {
	pts := []Point{Pt(-5, -5), Pt(35, 14), Pt(15, 15), Pt(40, 40)}
	qt := buildTree(pts, Square(30))
	for _, q := range []Point{Pt(-4, -4), Pt(34, 15), Pt(0, 0), Pt(50, 50)} {
		want := bruteKNN(pts, q, 2)
		got := qt.KNN(q, 2, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %v: got %v, want %v", q, got, want)
		}
	}
}

// TestQuadtreeEmptyAndDegenerate covers the k<=0, empty-tree, and
// single-point edges.
func TestQuadtreeEmptyAndDegenerate(t *testing.T) {
	qt := NewQuadtree(Square(1))
	if got := qt.KNN(Pt(0, 0), 3, nil); len(got) != 0 {
		t.Fatalf("empty tree KNN returned %v", got)
	}
	if _, ok := qt.Nearest(Pt(0, 0)); ok {
		t.Fatal("empty tree Nearest reported ok")
	}
	qt.Insert(42, Pt(0.5, 0.5))
	if got := qt.KNN(Pt(0, 0), 0, nil); len(got) != 0 {
		t.Fatalf("k=0 returned %v", got)
	}
	nb, ok := qt.Nearest(Pt(1, 1))
	if !ok || nb.ID != 42 {
		t.Fatalf("Nearest = %+v ok=%v, want id 42", nb, ok)
	}
}

// FuzzKNN lets the mutation engine hunt for (point set, query, k)
// combinations where the quadtree disagrees with the linear-scan oracle.
func FuzzKNN(f *testing.F) {
	f.Add(uint64(1), uint(20), uint(3), 12.0, 7.0)
	f.Add(uint64(99), uint(1), uint(1), -5.0, 31.0)
	f.Add(uint64(1234), uint(150), uint(10), 0.0, 0.0)
	f.Fuzz(func(t *testing.T, seed uint64, n, k uint, qx, qy float64) {
		if math.IsNaN(qx) || math.IsNaN(qy) || math.IsInf(qx, 0) || math.IsInf(qy, 0) {
			t.Skip()
		}
		nn := int(n%300) + 1
		kk := int(k%32) + 1
		src := &qtSource{state: seed}
		pts := randomPoints(src, nn, 30)
		qt := buildTree(pts, Square(30))
		q := Pt(qx, qy)
		want := bruteKNN(pts, q, kk)
		got := qt.KNN(q, kk, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed=%d n=%d k=%d query=%v:\n got %v\nwant %v", seed, nn, kk, q, got, want)
		}
	})
}
