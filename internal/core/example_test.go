package core_test

import (
	"fmt"

	"fluxtrack/internal/core"
	"fluxtrack/internal/fit"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/traffic"
)

// Example demonstrates the end-to-end attack: deploy, observe through a
// sparse sniffer, and localize a mobile user from traffic volume alone.
func Example() {
	src := rng.New(42)
	scenario, err := core.NewScenario(core.ScenarioConfig{}, src)
	if err != nil {
		fmt.Println("scenario:", err)
		return
	}
	sniffer, err := scenario.NewSniffer(0.10, src)
	if err != nil {
		fmt.Println("sniffer:", err)
		return
	}
	user := traffic.User{Pos: geom.Pt(12, 18), Stretch: 2, Active: true}
	if _, err := sniffer.Observe([]traffic.User{user}, 0, src); err != nil {
		fmt.Println("observe:", err)
		return
	}
	res, err := sniffer.Localize(1, fit.Options{Samples: 2000, TopM: 10}, src)
	if err != nil {
		fmt.Println("localize:", err)
		return
	}
	errDist := res.Best[0].Positions[0].Dist(user.Pos)
	fmt.Printf("sniffed nodes: %d\n", len(sniffer.Nodes()))
	fmt.Printf("recovered within 3 units: %v\n", errDist < 3)
	// Output:
	// sniffed nodes: 90
	// recovered within 3 units: true
}
