package core

import (
	"sync"
	"testing"

	"fluxtrack/internal/fault"
	"fluxtrack/internal/fit"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/traffic"
)

// fuzzScenario caches one small scenario across fuzz iterations: the
// adversary/defense plumbing under test is downstream of scenario
// construction, and rebuilding 200 nodes per input would dominate the fuzz
// budget.
var fuzzScenario = sync.OnceValues(func() (*Scenario, error) {
	return NewScenario(ScenarioConfig{
		Field: geom.Square(16), Nodes: 200, Radius: 2.4,
	}, rng.New(1))
})

// FuzzAdversaryMaskedFit drives the full hostile pipeline end to end —
// observe, Byzantine tampering, benign fault injection, masked robust
// localization — under fuzz-chosen adversary mixes, fault rates, and defense
// modes. The pipeline must never panic and must either return a structured
// error or estimates inside the field.
func FuzzAdversaryMaskedFit(f *testing.F) {
	f.Add(uint64(1), byte(40), byte(30), byte(20), byte(0), byte(0))
	f.Add(uint64(7), byte(255), byte(0), byte(0), byte(3), byte(60))
	f.Add(uint64(42), byte(0), byte(0), byte(255), byte(2), byte(200))
	f.Fuzz(func(t *testing.T, seed uint64, inflate, deflate, replay, mode, loss byte) {
		sc, err := fuzzScenario()
		if err != nil {
			t.Fatal(err)
		}
		// Map bytes onto valid fractions, normalizing when the sum
		// overflows 1 — config validation is covered by unit tests; here we
		// want deep, valid-but-extreme pipelines.
		fi, fd, fr := float64(inflate)/255, float64(deflate)/255, float64(replay)/255
		if s := fi + fd + fr; s > 1 {
			// The slack keeps the normalized sum under 1 despite rounding.
			s *= 1 + 1e-9
			fi, fd, fr = fi/s, fd/s, fr/s
		}
		advCfg := fault.AdversaryConfig{
			InflateFrac: fi, DeflateFrac: fd, ReplayFrac: fr,
			ReplayLag: 1 + int(replay)%3,
		}
		robust := fit.RobustConfig{Mode: fit.RobustMode(int(mode) % 4)}

		src := rng.New(seed)
		users := traffic.RandomUsers(sc.Field(), 1+int(seed%2), 1, 3, src)
		sniffer, err := sc.NewSniffer(0.25, src)
		if err != nil {
			t.Fatal(err)
		}
		adv, err := sniffer.NewAdversary(advCfg, src.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		inj, err := sniffer.NewFaultInjector(fault.Config{LossProb: float64(loss%128) / 256}, src.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 2; round++ {
			readings, err := sniffer.Observe(users, 0.05, src)
			if err != nil {
				t.Fatal(err)
			}
			readings, err = adv.Apply(readings)
			if err != nil {
				t.Fatal(err)
			}
			deg, err := inj.Apply(readings)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sniffer.LocalizeMasked(deg, len(users),
				fit.Options{Samples: 40, TopM: 3, Robust: robust}, src)
			if err != nil {
				// A fully-degraded window can leave too few samples to fit;
				// a structured error is the contract, a panic is the bug.
				continue
			}
			for _, pos := range res.Best[0].Positions {
				if !sc.Field().Contains(pos) {
					t.Fatalf("estimate %v outside field %v", pos, sc.Field())
				}
			}
		}
	})
}
