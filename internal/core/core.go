// Package core is the top-level API of the flux-fingerprinting library. It
// wires the substrates together into the paper's attack pipeline:
//
//	Scenario — a deployed sensor network plus its traffic simulator and a
//	           calibrated flux model (the world).
//	Sniffer  — a sparse set of passively monitored nodes (the adversary's
//	           vantage), producing flux observations.
//	           Localize / NewTracker run the NLS fit (§4.A) and the
//	           Sequential Monte Carlo tracker (Algorithm 4.1) on those
//	           observations.
//
// A minimal end-to-end attack:
//
//	src := rng.New(1)
//	sc, _ := core.NewScenario(core.ScenarioConfig{}, src)
//	sniffer, _ := sc.NewSniffer(0.1, src)           // sniff 10% of nodes
//	users := traffic.RandomUsers(sc.Field(), 2, 1, 3, src)
//	obs, _ := sniffer.Observe(users, 0, src)
//	res, _ := sniffer.Localize(2, fit.Options{}, src)
package core

import (
	"errors"
	"fmt"
	"math"

	"fluxtrack/internal/deploy"
	"fluxtrack/internal/fault"
	"fluxtrack/internal/fingerprint"
	"fluxtrack/internal/fit"
	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/network"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/shard"
	"fluxtrack/internal/smc"
	"fluxtrack/internal/traffic"
)

// ScenarioConfig configures a simulated deployment. The zero value gives
// the paper's standard setup (§5.A): 900 nodes in perturbed grids on a
// 30x30 field with communication radius 2.4 (average degree ≈ 18).
type ScenarioConfig struct {
	Field      geom.Rect   // deployment field; zero means 30x30
	Nodes      int         // node count; zero means 900
	Radius     float64     // radio range; zero means 2.4
	Deployment deploy.Kind // layout; zero means perturbed grid
	// SmoothPasses is how many neighborhood-averaging passes the sniffed
	// flux goes through before sampling. A passive sniffer physically
	// overhears every transmission in radio range, so its reading is a
	// neighborhood aggregate rather than a single node's counter; one pass
	// (the default, use -1 to disable) models that.
	SmoothPasses int
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.Field.Width() <= 0 || c.Field.Height() <= 0 {
		c.Field = geom.Square(30)
	}
	if c.Nodes <= 0 {
		c.Nodes = 900
	}
	if c.Radius <= 0 {
		c.Radius = 2.4
	}
	if c.Deployment == 0 {
		c.Deployment = deploy.PerturbedGrid
	}
	if c.SmoothPasses == 0 {
		c.SmoothPasses = 1
	}
	if c.SmoothPasses < 0 {
		c.SmoothPasses = 0
	}
	return c
}

// Scenario is a deployed sensor network with its traffic simulator and the
// calibrated theoretical flux model.
type Scenario struct {
	cfg   ScenarioConfig
	net   *network.Network
	sim   *traffic.Simulator
	model *fluxmodel.Model
	cal   fluxmodel.Calibration
}

// NewScenario deploys a network per cfg and calibrates the flux model.
func NewScenario(cfg ScenarioConfig, src *rng.Source) (*Scenario, error) {
	cfg = cfg.withDefaults()
	positions, err := deploy.Generate(deploy.Config{
		Field: cfg.Field, N: cfg.Nodes, Kind: cfg.Deployment,
	}, src)
	if err != nil {
		return nil, fmt.Errorf("core: deploy: %w", err)
	}
	net, err := network.New(cfg.Field, positions, cfg.Radius)
	if err != nil {
		return nil, fmt.Errorf("core: network: %w", err)
	}
	// Calibrate from a central node: hop geometry is most regular there.
	cal, err := fluxmodel.Calibrate(net, net.Nearest(cfg.Field.Center()))
	if err != nil {
		return nil, fmt.Errorf("core: calibrate: %w", err)
	}
	model, err := fluxmodel.ForNetwork(net, cal)
	if err != nil {
		return nil, fmt.Errorf("core: model: %w", err)
	}
	return &Scenario{
		cfg:   cfg,
		net:   net,
		sim:   traffic.NewSimulator(net),
		model: model,
		cal:   cal,
	}, nil
}

// Field returns the deployment field.
func (s *Scenario) Field() geom.Rect { return s.cfg.Field }

// Network returns the deployed network.
func (s *Scenario) Network() *network.Network { return s.net }

// Simulator returns the ground-truth traffic simulator.
func (s *Scenario) Simulator() *traffic.Simulator { return s.sim }

// SetMetrics binds (or, with nil, unbinds) the observability registry the
// scenario's traffic simulator reports its traffic.* work counters to; see
// traffic.Simulator.SetMetrics for the binding contract.
func (s *Scenario) SetMetrics(m *obs.Metrics) { s.sim.SetMetrics(m) }

// Model returns the calibrated flux model.
func (s *Scenario) Model() *fluxmodel.Model { return s.model }

// Calibration returns the model calibration constants.
func (s *Scenario) Calibration() fluxmodel.Calibration { return s.cal }

// GroundFlux simulates the cumulated per-node flux for the users and
// applies the scenario's sniffer smoothing passes.
func (s *Scenario) GroundFlux(users []traffic.User) ([]float64, error) {
	flux, err := s.sim.Flux(users)
	if err != nil {
		return nil, err
	}
	for pass := 0; pass < s.cfg.SmoothPasses; pass++ {
		flux, err = s.net.SmoothOverNeighborhood(flux)
		if err != nil {
			return nil, err
		}
	}
	return flux, nil
}

// Sniffer is the adversary's vantage: a sparse subset of monitored nodes.
type Sniffer struct {
	scenario *Scenario
	nodes    []int
	points   []geom.Point
	lastObs  []float64
}

// NewSniffer picks ceil(fraction*N) random nodes to monitor. The paper
// evaluates fractions from 40% down to 5%.
func (s *Scenario) NewSniffer(fraction float64, src *rng.Source) (*Sniffer, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("core: sniffer fraction %v outside (0, 1]", fraction)
	}
	count := int(math.Ceil(fraction * float64(s.net.Len())))
	return s.NewSnifferCount(count, src)
}

// NewSnifferCount picks exactly count random nodes to monitor.
func (s *Scenario) NewSnifferCount(count int, src *rng.Source) (*Sniffer, error) {
	nodes, err := traffic.PickSamplingNodes(s.net, count, src)
	if err != nil {
		return nil, fmt.Errorf("core: sniffer: %w", err)
	}
	points := make([]geom.Point, len(nodes))
	for i, n := range nodes {
		points[i] = s.net.Pos(n)
	}
	return &Sniffer{scenario: s, nodes: nodes, points: points}, nil
}

// Nodes returns the monitored node indices.
func (sn *Sniffer) Nodes() []int { return append([]int(nil), sn.nodes...) }

// Points returns the monitored node positions.
func (sn *Sniffer) Points() []geom.Point { return append([]geom.Point(nil), sn.points...) }

// Observe simulates one measurement window: the users' combined flux,
// smoothed, sampled at the monitored nodes, with optional multiplicative
// measurement noise of the given sigma. The observation is retained for a
// subsequent Localize call.
func (sn *Sniffer) Observe(users []traffic.User, noiseSigma float64, src *rng.Source) ([]float64, error) {
	flux, err := sn.scenario.GroundFlux(users)
	if err != nil {
		return nil, err
	}
	m, err := traffic.Sample(flux, sn.nodes)
	if err != nil {
		return nil, err
	}
	if noiseSigma > 0 {
		m = m.AddNoise(noiseSigma, src)
	}
	sn.lastObs = m.Flux
	return append([]float64(nil), m.Flux...), nil
}

// Problem builds the NLS fitting problem for an observation vector (readings
// aligned with Points).
func (sn *Sniffer) Problem(observation []float64) (*fit.Problem, error) {
	return fit.NewProblem(sn.scenario.model, sn.points, observation)
}

// NewFaultInjector builds a fault injector sized to this sniffer's monitored
// nodes. Seed it from the trial's seed stream so degraded trials stay
// deterministic at any worker count (see internal/fault).
func (sn *Sniffer) NewFaultInjector(cfg fault.Config, seed uint64) (*fault.Injector, error) {
	return fault.NewInjector(cfg, len(sn.nodes), seed)
}

// NewAdversary builds a Byzantine adversary over this sniffer's monitored
// nodes (the colluding-coalition behavior needs their positions). Tampered
// readings compose with a fault injector by applying the adversary first —
// a compromised sensor's report can still be lost or delayed downstream.
// Seed it from the trial's seed stream; which sensors lie is then a pure
// function of that seed (see fault.Adversary).
func (sn *Sniffer) NewAdversary(cfg fault.AdversaryConfig, seed uint64) (*fault.Adversary, error) {
	return fault.NewAdversary(cfg, sn.points, seed)
}

// ObserveDegraded is Observe followed by one fault-injection round: the
// users' flux is measured as usual, then the injector decides which reports
// actually reach the adversary this round, which are delayed (Age > 0), and
// which are lost. A nil injector returns an all-present, all-fresh
// observation, so callers can thread one code path for both cases.
func (sn *Sniffer) ObserveDegraded(users []traffic.User, noiseSigma float64,
	inj *fault.Injector, src *rng.Source) (fault.Observation, error) {
	readings, err := sn.Observe(users, noiseSigma, src)
	if err != nil {
		return fault.Observation{}, err
	}
	if inj == nil {
		obs := fault.Observation{
			Readings: readings,
			Present:  make([]bool, len(readings)),
			Age:      make([]int, len(readings)),
		}
		for i := range obs.Present {
			obs.Present[i] = true
		}
		return obs, nil
	}
	return inj.Apply(readings)
}

// ProblemMasked builds the NLS fitting problem over the delivered reports of
// a degraded observation only; missing sensors simply drop out of the fit.
// It returns fit.ErrAllMasked when nothing was delivered.
func (sn *Sniffer) ProblemMasked(obs fault.Observation) (*fit.Problem, error) {
	return fit.NewProblemMasked(sn.scenario.model, sn.points, obs.Readings, nil, obs.Present)
}

// LocalizeMasked runs the instant-localization attack on a degraded
// observation, fitting only the sensors that delivered a report.
func (sn *Sniffer) LocalizeMasked(obs fault.Observation, numUsers int, opts fit.Options, src *rng.Source) (fit.Result, error) {
	prob, err := sn.ProblemMasked(obs)
	if err != nil {
		return fit.Result{}, err
	}
	return fit.Localize(prob, numUsers, opts, src)
}

// NewFingerprintDB precomputes the coarse-search fingerprint database for
// this sniffer's vantage: one model flux signature per grid cell, sampled at
// the monitored nodes. Pass the result to instant localization through
// fit.Options.Coarse to shortlist candidates before the exact search; the
// tracker builds its own database when TrackerConfig.Coarse is enabled.
func (sn *Sniffer) NewFingerprintDB(cfg fingerprint.CoarseConfig, workers int, m *obs.Metrics) (*fingerprint.DB, error) {
	return fingerprint.NewDB(sn.scenario.model, sn.points, cfg, workers, m)
}

// Localize runs the instant-localization attack (§5.A) on the most recent
// observation.
func (sn *Sniffer) Localize(numUsers int, opts fit.Options, src *rng.Source) (fit.Result, error) {
	if sn.lastObs == nil {
		return fit.Result{}, errors.New("core: Localize requires a prior Observe call")
	}
	prob, err := sn.Problem(sn.lastObs)
	if err != nil {
		return fit.Result{}, err
	}
	return fit.Localize(prob, numUsers, opts, src)
}

// TrackerConfig tunes a tracker created by NewTracker. Zero values take the
// paper's defaults (N=1000, M=10, VMax=5).
type TrackerConfig struct {
	N    int
	M    int
	VMax float64
	// Search configures the tracker's inner candidate search, including the
	// robust-fitting defense against Byzantine sensors: setting
	// Search.Robust.Mode (huber, loso, or both) makes every Step/StepMasked
	// round derive per-sensor trust multipliers from the fit's own residuals
	// and re-rank on the reweighted problem (see fit.RobustConfig).
	Search            fit.Options
	UniformWeights    bool // disable §4.D importance weighting (ablation)
	ActiveSetLimit    int  // cap on users searched per round (§5.C regime)
	HeadingPrediction bool // §4.C refinement: dead-reckoned prediction discs
	// StaleAttenuation controls how strongly delayed reports are discounted
	// in masked tracking rounds (see smc.Config.StaleAttenuation; zero
	// takes the default of 0.5, negative disables the discount).
	StaleAttenuation float64
	// Coarse, when Enabled, precomputes a fingerprint database over the
	// sniffer's monitored nodes and shortlists each user's candidates by
	// coarse cell score before the exact Gram/NNLS ranking runs each round
	// (see internal/fingerprint and fit.Coarse). TopK at or above N keeps
	// every candidate and degrades to the exact search byte for byte.
	Coarse fingerprint.CoarseConfig
	// DBCache, when non-nil, memoizes the coarse prestage's fingerprint
	// database builds across trackers sharing the cache (repeated trials,
	// the tiles of a sharded field, benchmark repeats); see
	// fingerprint.Cache. Caching never changes tracker output.
	DBCache *fingerprint.Cache
	// IncumbentFitLimit caps how many incumbent users join the exact Gram
	// fit of the tracker's active-set selection (see
	// smc.Config.IncumbentFitLimit; zero takes the default of 512, negative
	// disables the cap). Only meaningful with ActiveSetLimit.
	IncumbentFitLimit int
	// Shards splits the field into a Rows×Cols tile grid tracked by
	// internal/shard: each tile owns its sensors, its fingerprint database,
	// and an independent tracker, and users migrate between tiles as their
	// estimates cross seams. The zero Grid (0×0) keeps the single unsharded
	// tracker. Only NewStepTracker and NewShardedTracker honor it; NewTracker
	// always builds the plain tracker.
	Shards shard.Grid
	// Sched selects the sharded coordinator's tile-to-worker scheduling
	// policy (cost-weighted LPT by default; see shard.Config.Sched). Output
	// never depends on it.
	Sched shard.Scheduler
	// TileCapacity caps users per tile in a sharded tracker, with
	// deterministic admission redirect and spill accounting (see
	// shard.Config.TileCapacity). 0 = unlimited.
	TileCapacity int
	// DenseResults restores the sharded coordinator's legacy dense per-tile
	// result arrays — the differential-testing and benchmarking baseline
	// (see shard.Config.DenseResults). Output is byte-identical either way.
	DenseResults bool
	// PerTileMetrics registers shard.tile.NNN.* instruments per tile on top
	// of the aggregated shard.* set (see shard.Config.PerTileMetrics).
	PerTileMetrics bool
	// InitialPositions, when set alongside Shards (length = user count),
	// seeds each user's owning tile from its starting position; see
	// shard.Config.InitialPositions.
	InitialPositions []geom.Point
	// Workers bounds the goroutines inside one tracker round (prediction,
	// candidate scoring, update); 0 means GOMAXPROCS, 1 forces serial.
	// Output is identical at any value (see smc.Config.Workers).
	Workers int
	// Metrics, when non-nil, receives the tracker's smc.step.* work counters
	// and latency histogram plus the inner search's fit.* counters. Metrics
	// are write-only: enabling them never changes tracker output (see
	// smc.Config.Metrics and internal/obs).
	Metrics *obs.Metrics
	// Trace, when non-nil, receives one structured obs.Span per tracker
	// round (see smc.Config.Trace).
	Trace *obs.Trace
}

// NewTracker builds a Sequential Monte Carlo tracker (Algorithm 4.1) that
// consumes this sniffer's observations.
func (sn *Sniffer) NewTracker(numUsers int, cfg TrackerConfig, seed uint64) (*smc.Tracker, error) {
	return smc.New(sn.trackerTemplate(numUsers, cfg), seed)
}

// trackerTemplate maps a TrackerConfig onto the smc.Config both the plain
// and the sharded constructors start from.
func (sn *Sniffer) trackerTemplate(numUsers int, cfg TrackerConfig) smc.Config {
	return smc.Config{
		Model:             sn.scenario.model,
		SamplePoints:      sn.points,
		NumUsers:          numUsers,
		N:                 cfg.N,
		M:                 cfg.M,
		VMax:              cfg.VMax,
		Search:            cfg.Search,
		UniformWeights:    cfg.UniformWeights,
		ActiveSetLimit:    cfg.ActiveSetLimit,
		IncumbentFitLimit: cfg.IncumbentFitLimit,
		HeadingPrediction: cfg.HeadingPrediction,
		StaleAttenuation:  cfg.StaleAttenuation,
		Coarse:            cfg.Coarse,
		DBCache:           cfg.DBCache,
		Workers:           cfg.Workers,
		Metrics:           cfg.Metrics,
		Trace:             cfg.Trace,
	}
}

// StepTracker is the round-stepping surface shared by the plain smc.Tracker
// and the sharded shard.Field, so experiment, benchmark, and serving code
// threads one code path for both. WorkTotals exposes the cumulative NNLS
// effort for observability; it feeds dashboards and schedulers only and
// never influences tracker output.
type StepTracker interface {
	Step(t float64, measured []float64) (smc.StepResult, error)
	StepMasked(t float64, measured []float64, present []bool, age []int) (smc.StepResult, error)
	Steps() int
	WorkTotals() (solves, iters uint64)
}

var (
	_ StepTracker = (*smc.Tracker)(nil)
	_ StepTracker = (*shard.Field)(nil)
)

// NewShardedTracker builds a tiled multi-shard tracker (internal/shard)
// over this sniffer's vantage: cfg.Shards tiles, each owning its sensors
// and an independent SMC tracker, coordinated with deterministic cross-tile
// handoff. cfg.Workers bounds both the tile fan-out and each tile's inner
// round. A 1×1 grid reproduces NewTracker's output byte for byte.
func (sn *Sniffer) NewShardedTracker(numUsers int, cfg TrackerConfig, seed uint64) (*shard.Field, error) {
	grid := cfg.Shards
	if grid.Tiles() == 0 {
		grid = shard.Grid{Rows: 1, Cols: 1}
	}
	tmpl := sn.trackerTemplate(numUsers, cfg)
	tmpl.Model, tmpl.SamplePoints, tmpl.NumUsers = nil, nil, 0 // per-tile overrides
	tmpl.DBCache = nil
	return shard.New(shard.Config{
		Model:            sn.scenario.model,
		SamplePoints:     sn.points,
		NumUsers:         numUsers,
		Grid:             grid,
		Tracker:          tmpl,
		InitialPositions: cfg.InitialPositions,
		Workers:          cfg.Workers,
		Sched:            cfg.Sched,
		TileCapacity:     cfg.TileCapacity,
		DenseResults:     cfg.DenseResults,
		PerTileMetrics:   cfg.PerTileMetrics,
		Metrics:          cfg.Metrics,
		Trace:            cfg.Trace,
		Cache:            cfg.DBCache,
	}, seed)
}

// NewStepTracker builds the tracker cfg asks for: the sharded coordinator
// when cfg.Shards names a grid (even 1×1), the plain tracker otherwise.
func (sn *Sniffer) NewStepTracker(numUsers int, cfg TrackerConfig, seed uint64) (StepTracker, error) {
	if cfg.Shards.Tiles() > 0 {
		return sn.NewShardedTracker(numUsers, cfg, seed)
	}
	return sn.NewTracker(numUsers, cfg, seed)
}
