package core

import (
	"math"
	"testing"

	"fluxtrack/internal/deploy"
	"fluxtrack/internal/fit"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/traffic"
)

func defaultScenario(t testing.TB, seed uint64) *Scenario {
	t.Helper()
	sc, err := NewScenario(ScenarioConfig{}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestScenarioDefaults(t *testing.T) {
	sc := defaultScenario(t, 1)
	if sc.Network().Len() != 900 {
		t.Errorf("node count = %d, want 900", sc.Network().Len())
	}
	if sc.Field() != geom.Square(30) {
		t.Errorf("field = %v, want 30x30", sc.Field())
	}
	if sc.Network().Radius() != 2.4 {
		t.Errorf("radius = %v, want 2.4", sc.Network().Radius())
	}
	if d := sc.Network().AvgDegree(); d < 12 || d > 22 {
		t.Errorf("average degree = %v, want ~18", d)
	}
	if sc.Calibration().HopLength <= 0 {
		t.Error("calibration hop length not positive")
	}
	if sc.Model() == nil || sc.Simulator() == nil {
		t.Error("scenario accessors returned nil")
	}
}

func TestScenarioCustomConfig(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{
		Nodes: 300, Radius: 3, Deployment: deploy.UniformRandom, SmoothPasses: -1,
	}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Network().Len() != 300 {
		t.Errorf("node count = %d, want 300", sc.Network().Len())
	}
	// SmoothPasses -1 disables smoothing: GroundFlux equals raw flux.
	users := []traffic.User{{Pos: geom.Pt(15, 15), Stretch: 2, Active: true}}
	gf, err := sc.GroundFlux(users)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := sc.Simulator().Flux(users)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gf {
		if gf[i] != raw[i] {
			t.Fatal("SmoothPasses=-1 still smoothed the flux")
		}
	}
}

func TestGroundFluxSmoothing(t *testing.T) {
	sc := defaultScenario(t, 3)
	users := []traffic.User{{Pos: geom.Pt(15, 15), Stretch: 2, Active: true}}
	smoothed, err := sc.GroundFlux(users)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := sc.Simulator().Flux(users)
	if err != nil {
		t.Fatal(err)
	}
	_, rawPeak := traffic.PeakNode(raw)
	_, smPeak := traffic.PeakNode(smoothed)
	if smPeak >= rawPeak {
		t.Errorf("smoothing did not reduce the peak: %v >= %v", smPeak, rawPeak)
	}
	// Total flux is redistributed, not created: totals stay comparable.
	var rawSum, smSum float64
	for i := range raw {
		rawSum += raw[i]
		smSum += smoothed[i]
	}
	if math.Abs(rawSum-smSum)/rawSum > 0.2 {
		t.Errorf("smoothing changed total flux too much: %v vs %v", smSum, rawSum)
	}
}

func TestNewSnifferValidation(t *testing.T) {
	sc := defaultScenario(t, 4)
	src := rng.New(5)
	if _, err := sc.NewSniffer(0, src); err == nil {
		t.Error("zero fraction must error")
	}
	if _, err := sc.NewSniffer(1.5, src); err == nil {
		t.Error("fraction > 1 must error")
	}
	sn, err := sc.NewSniffer(0.1, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(sn.Nodes()) != 90 {
		t.Errorf("10%% sniffer has %d nodes, want 90", len(sn.Nodes()))
	}
	if len(sn.Points()) != 90 {
		t.Errorf("points length %d, want 90", len(sn.Points()))
	}
}

func TestObserveAndLocalizeEndToEnd(t *testing.T) {
	sc := defaultScenario(t, 6)
	src := rng.New(7)
	sn, err := sc.NewSniffer(0.1, src)
	if err != nil {
		t.Fatal(err)
	}
	users := []traffic.User{{Pos: geom.Pt(12, 17), Stretch: 2, Active: true}}
	obs, err := sn.Observe(users, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 90 {
		t.Fatalf("observation length %d, want 90", len(obs))
	}
	res, err := sn.Localize(1, fit.Options{Samples: 2000, TopM: 10}, src)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Best[0].Positions[0]
	if d := got.Dist(users[0].Pos); d > 3 {
		t.Errorf("localization error %.2f, want <= 3 (estimate %v)", d, got)
	}
}

func TestLocalizeWithoutObserve(t *testing.T) {
	sc := defaultScenario(t, 8)
	sn, err := sc.NewSniffer(0.1, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sn.Localize(1, fit.Options{}, rng.New(10)); err == nil {
		t.Error("Localize before Observe must error")
	}
}

func TestObserveNoise(t *testing.T) {
	sc := defaultScenario(t, 11)
	src := rng.New(12)
	sn, err := sc.NewSniffer(0.1, src)
	if err != nil {
		t.Fatal(err)
	}
	users := []traffic.User{{Pos: geom.Pt(15, 15), Stretch: 2, Active: true}}
	clean, err := sn.Observe(users, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := sn.Observe(users, 0.3, src)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range clean {
		if clean[i] != noisy[i] {
			diff++
		}
	}
	if diff < len(clean)/2 {
		t.Errorf("noise changed only %d/%d readings", diff, len(clean))
	}
}

func TestTrackerEndToEnd(t *testing.T) {
	sc := defaultScenario(t, 13)
	src := rng.New(14)
	sn, err := sc.NewSniffer(0.1, src)
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := sn.NewTracker(1, TrackerConfig{N: 300, M: 10, VMax: 5}, 15)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr float64
	for step := 1; step <= 6; step++ {
		pos := geom.Pt(5+2*float64(step), 15)
		obs, err := sn.Observe([]traffic.User{{Pos: pos, Stretch: 2, Active: true}}, 0, src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tracker.Step(float64(step), obs)
		if err != nil {
			t.Fatal(err)
		}
		lastErr = res.Estimates[0].Mean.Dist(pos)
	}
	if lastErr > 3 {
		t.Errorf("final tracking error %.2f, want <= 3", lastErr)
	}
}

func TestSnifferAccessorsCopy(t *testing.T) {
	sc := defaultScenario(t, 16)
	sn, err := sc.NewSniffer(0.05, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	nodes := sn.Nodes()
	nodes[0] = -42
	if sn.Nodes()[0] == -42 {
		t.Error("Nodes returned aliasing storage")
	}
	pts := sn.Points()
	pts[0] = geom.Pt(-1, -1)
	if sn.Points()[0] == geom.Pt(-1, -1) {
		t.Error("Points returned aliasing storage")
	}
}
