package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var hits [100]atomic.Int32
		if err := For(len(hits), workers, func(_, i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := For(100, workers, func(_, i int) error {
			if i == 57 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: got %v, want sentinel", workers, err)
		}
	}
	if err := For(0, 4, func(int, int) error { return sentinel }); err != nil {
		t.Errorf("empty For returned %v", err)
	}
}

func TestForShardIndexInRange(t *testing.T) {
	const n, workers = 64, 5
	resolved := Resolve(n, workers)
	err := For(n, workers, func(w, _ int) error {
		if w < 0 || w >= resolved {
			t.Errorf("worker index %d outside [0, %d)", w, resolved)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(10, 4); got != 4 {
		t.Errorf("Resolve(10, 4) = %d, want 4", got)
	}
	if got := Resolve(3, 8); got != 3 {
		t.Errorf("Resolve(3, 8) = %d, want 3 (capped at n)", got)
	}
	if got := Resolve(10, 0); got < 1 {
		t.Errorf("Resolve(10, 0) = %d, want >= 1", got)
	}
	if got := Resolve(0, 0); got != 1 {
		t.Errorf("Resolve(0, 0) = %d, want 1", got)
	}
}
