package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var hits [100]atomic.Int32
		if err := For(len(hits), workers, func(_, i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := For(100, workers, func(_, i int) error {
			if i == 57 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: got %v, want sentinel", workers, err)
		}
	}
	if err := For(0, 4, func(int, int) error { return sentinel }); err != nil {
		t.Errorf("empty For returned %v", err)
	}
}

func TestForShardIndexInRange(t *testing.T) {
	const n, workers = 64, 5
	resolved := Resolve(n, workers)
	err := For(n, workers, func(w, _ int) error {
		if w < 0 || w >= resolved {
			t.Errorf("worker index %d outside [0, %d)", w, resolved)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLPTAssignDeterministic(t *testing.T) {
	costs := []float64{5, 1, 9, 1, 3, 9, 2, 7}
	first := LPTAssign(costs, 3, nil)
	for rep := 0; rep < 10; rep++ {
		again := LPTAssign(costs, 3, nil)
		if len(again) != len(first) {
			t.Fatalf("rep %d: %d workers, want %d", rep, len(again), len(first))
		}
		for w := range first {
			if len(again[w]) != len(first[w]) {
				t.Fatalf("rep %d worker %d: %v vs %v", rep, w, again[w], first[w])
			}
			for k := range first[w] {
				if again[w][k] != first[w][k] {
					t.Fatalf("rep %d worker %d: %v vs %v", rep, w, again[w], first[w])
				}
			}
		}
	}
}

func TestLPTAssignCoversEveryUnit(t *testing.T) {
	costs := make([]float64, 37)
	for i := range costs {
		costs[i] = float64((i * 7) % 11)
	}
	for _, workers := range []int{1, 2, 5, 64} {
		plan := LPTAssign(costs, workers, nil)
		seen := make([]int, len(costs))
		for w := range plan {
			prev := -1
			for _, i := range plan[w] {
				if i <= prev {
					t.Fatalf("workers=%d worker %d not ascending: %v", workers, w, plan[w])
				}
				prev = i
				seen[i]++
			}
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: unit %d assigned %d times", workers, i, c)
			}
		}
	}
}

func TestLPTAssignBalancesSkew(t *testing.T) {
	// One hot unit that dwarfs everything else: LPT must give it a worker to
	// itself while the cheap units pack onto the remaining workers, unlike a
	// contiguous split which would pair the hot unit with its neighbors.
	costs := []float64{100, 1, 1, 1, 1, 1, 1, 1}
	plan := LPTAssign(costs, 4, nil)
	for w := range plan {
		for _, i := range plan[w] {
			if i == 0 && len(plan[w]) != 1 {
				t.Fatalf("hot unit shares worker %d with %v", w, plan[w])
			}
		}
	}
	// Max worker load should be the hot unit alone.
	for w := range plan {
		var load float64
		for _, i := range plan[w] {
			load += costs[i]
		}
		if load > 100 {
			t.Fatalf("worker %d overloaded: %v (load %g)", w, plan[w], load)
		}
	}
}

func TestLPTAssignReusesPlan(t *testing.T) {
	costs := []float64{4, 2, 6, 1}
	plan := LPTAssign(costs, 2, nil)
	again := LPTAssign(costs, 2, plan)
	if &again[0] != &plan[0] {
		t.Error("plan backing array not reused")
	}
	// Shrinking inputs must not leave stale units behind.
	small := LPTAssign(costs[:2], 2, again)
	total := 0
	for w := range small {
		total += len(small[w])
	}
	if total != 2 {
		t.Fatalf("reused plan holds %d units, want 2", total)
	}
}

func TestForPlanCoversAndPropagates(t *testing.T) {
	costs := make([]float64, 50)
	for i := range costs {
		costs[i] = float64(i % 7)
	}
	for _, workers := range []int{1, 3, 8} {
		plan := LPTAssign(costs, workers, nil)
		var hits [50]atomic.Int32
		if err := ForPlan(plan, func(_, i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: unit %d ran %d times", workers, i, got)
			}
		}
	}
	sentinel := errors.New("boom")
	plan := LPTAssign(costs, 4, nil)
	err := ForPlan(plan, func(_, i int) error {
		if i == 23 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("got %v, want sentinel", err)
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(10, 4); got != 4 {
		t.Errorf("Resolve(10, 4) = %d, want 4", got)
	}
	if got := Resolve(3, 8); got != 3 {
		t.Errorf("Resolve(3, 8) = %d, want 3 (capped at n)", got)
	}
	if got := Resolve(10, 0); got < 1 {
		t.Errorf("Resolve(10, 0) = %d, want >= 1", got)
	}
	if got := Resolve(0, 0); got != 1 {
		t.Errorf("Resolve(0, 0) = %d, want 1", got)
	}
}
