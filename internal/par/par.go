// Package par provides the bounded fork-join helper shared by every
// intra-run parallel loop in the pipeline: the NLS candidate search in
// internal/fit and the per-user phases of the SMC tracker in internal/smc.
// (The experiment harness keeps its own work-stealing pool in internal/exp,
// whose units are whole trials rather than slices of one computation.)
//
// The contract that makes nested use safe is determinism: callers must make
// fn(w, i) a pure function of i that writes only index-disjoint outputs, so
// results never depend on the worker count or on scheduling. The worker
// index w exists solely to hand each goroutine its own scratch arena.
//
// For units with wildly uneven costs — the tiles of a skewed sharded field,
// where one hot tile can hold most of the users — the contiguous ranges of
// For serialize badly: the worker that draws the hot unit also draws its
// neighbors. LPTAssign plus ForPlan give callers a deterministic
// longest-processing-time schedule instead: units are assigned to the
// least-loaded worker in descending cost order, so the hot unit gets a
// worker to itself and the cheap units pack around it. The assignment is a
// pure function of (costs, workers) — never of measured wall time — so a
// run's schedule is reproducible, and because callers keep the
// index-disjoint-writes contract, output stays byte-identical under any
// schedule anyway.
package par

import (
	"errors"
	"runtime"
	"sort"
	"sync"
)

// Resolve returns the worker count For will actually use for n independent
// units: GOMAXPROCS when workers <= 0, never more than n, never less than 1.
func Resolve(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For runs fn(w, i) for every i in [0, n) on up to workers goroutines
// (GOMAXPROCS when workers <= 0). The worker index w identifies which of the
// Resolve(n, workers) contiguous shards is running, so callers can hand each
// worker its own scratch state. The first (lowest-shard) error wins; fn
// invocations must be independent. With one worker the loop runs inline in
// index order and aborts on the first error — the exact sequential path.
func For(n, workers int, fn func(w, i int) error) error {
	if n == 0 {
		return nil
	}
	workers = Resolve(n, workers)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := n * w / workers
			hi := n * (w + 1) / workers
			for i := lo; i < hi; i++ {
				if err := fn(w, i); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// LPTAssign builds a longest-processing-time schedule: unit i (cost
// costs[i]) is assigned to the worker with the least total cost so far,
// considering units in (cost descending, index ascending) order and breaking
// load ties by the lowest worker index. The result maps each of
// Resolve(len(costs), workers) workers to the ascending-sorted unit indices
// it owns. The assignment is a pure function of (costs, workers): equal
// inputs always produce the same plan, so a schedule derived from
// deterministic work counters is itself deterministic and reproducible
// across runs.
//
// plan is an optional previous return value whose backing slices are reused
// to keep steady-state scheduling allocation-free; pass nil on first use.
func LPTAssign(costs []float64, workers int, plan [][]int) [][]int {
	n := len(costs)
	workers = Resolve(n, workers)
	if cap(plan) < workers {
		plan = make([][]int, workers)
	}
	plan = plan[:workers]
	for w := range plan {
		plan[w] = plan[w][:0]
	}
	if n == 0 {
		return plan
	}
	// Order units by (cost desc, index asc). The order slice is rebuilt each
	// call; to stay allocation-free across rounds, callers can rely on plan
	// reuse — the order scratch is the only per-call allocation and is small
	// (one int per unit), so it is kept local for clarity.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if costs[ia] != costs[ib] {
			return costs[ia] > costs[ib]
		}
		return ia < ib
	})
	load := make([]float64, workers)
	for _, i := range order {
		best := 0
		for w := 1; w < workers; w++ {
			if load[w] < load[best] {
				best = w
			}
		}
		load[best] += costs[i]
		plan[best] = append(plan[best], i)
	}
	// Each worker steps its units in ascending index order, mirroring the
	// sequential path; merge order is the caller's job regardless.
	for w := range plan {
		sort.Ints(plan[w])
	}
	return plan
}

// ForPlan runs fn(w, i) for every unit i in plan[w], one goroutine per
// non-empty worker list (inline, in index order, when the plan has a single
// worker). Like For, the first (lowest-worker) error wins and fn must write
// only index-disjoint outputs so results are independent of scheduling.
func ForPlan(plan [][]int, fn func(w, i int) error) error {
	if len(plan) == 1 {
		for _, i := range plan[0] {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(plan))
	var wg sync.WaitGroup
	for w := range plan {
		if len(plan[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, i := range plan[w] {
				if err := fn(w, i); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return errors.Join(errs...)
}
