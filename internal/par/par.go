// Package par provides the bounded fork-join helper shared by every
// intra-run parallel loop in the pipeline: the NLS candidate search in
// internal/fit and the per-user phases of the SMC tracker in internal/smc.
// (The experiment harness keeps its own work-stealing pool in internal/exp,
// whose units are whole trials rather than slices of one computation.)
//
// The contract that makes nested use safe is determinism: callers must make
// fn(w, i) a pure function of i that writes only index-disjoint outputs, so
// results never depend on the worker count or on scheduling. The worker
// index w exists solely to hand each goroutine its own scratch arena.
package par

import (
	"errors"
	"runtime"
	"sync"
)

// Resolve returns the worker count For will actually use for n independent
// units: GOMAXPROCS when workers <= 0, never more than n, never less than 1.
func Resolve(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For runs fn(w, i) for every i in [0, n) on up to workers goroutines
// (GOMAXPROCS when workers <= 0). The worker index w identifies which of the
// Resolve(n, workers) contiguous shards is running, so callers can hand each
// worker its own scratch state. The first (lowest-shard) error wins; fn
// invocations must be independent. With one worker the loop runs inline in
// index order and aborts on the first error — the exact sequential path.
func For(n, workers int, fn func(w, i int) error) error {
	if n == 0 {
		return nil
	}
	workers = Resolve(n, workers)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := n * w / workers
			hi := n * (w + 1) / workers
			for i := lo; i < hi; i++ {
				if err := fn(w, i); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return errors.Join(errs...)
}
