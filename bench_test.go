package fluxtrack_test

import (
	"testing"

	"fluxtrack/internal/exp"
)

// benchExperiment runs one experiment end-to-end per benchmark iteration at
// the reduced QuickConfig effort. Every figure of the paper has one bench;
// run `go test -bench=. -benchmem` here or `cmd/fluxbench` for the
// full-effort tables.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	benchExperimentWorkers(b, id, 0) // 0 = one worker per CPU
}

// benchExperimentWorkers is benchExperiment with an explicit trial worker
// count; the Sequential/Parallel benchmark pairs below use it to measure
// the speedup of the trial pool (identical tables either way — the golden
// tests in internal/exp enforce that).
func benchExperimentWorkers(b *testing.B, id string, workers int) {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := exp.QuickConfig()
	cfg.Trials = 1
	cfg.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		table, err := e.Run(cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
	}
}

// BenchmarkFig3a regenerates the model error-rate CDF (Figure 3a).
func BenchmarkFig3a(b *testing.B) { benchExperiment(b, "fig3a") }

// BenchmarkFig3b regenerates the by-hop flux comparison (Figure 3b).
func BenchmarkFig3b(b *testing.B) { benchExperiment(b, "fig3b") }

// BenchmarkFig4 regenerates the recursive briefing rounds (Figure 4).
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates instant localization with full flux (Figure 5).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6a regenerates localization vs sampling percentage (Figure 6a).
func BenchmarkFig6a(b *testing.B) { benchExperiment(b, "fig6a") }

// BenchmarkFig6b regenerates localization vs network density (Figure 6b).
func BenchmarkFig6b(b *testing.B) { benchExperiment(b, "fig6b") }

// BenchmarkFig7 regenerates the tracking cases incl. the crossing (Figure 7).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8a regenerates tracking vs sampling percentage (Figure 8a).
func BenchmarkFig8a(b *testing.B) { benchExperiment(b, "fig8a") }

// BenchmarkFig8b regenerates tracking vs network density (Figure 8b).
func BenchmarkFig8b(b *testing.B) { benchExperiment(b, "fig8b") }

// BenchmarkFig10a regenerates the trace-driven sweep over sampling
// percentage (Figure 10a).
func BenchmarkFig10a(b *testing.B) { benchExperiment(b, "fig10a") }

// BenchmarkFig10b regenerates the trace-driven sweep over the resampling
// radius (Figure 10b).
func BenchmarkFig10b(b *testing.B) { benchExperiment(b, "fig10b") }

// BenchmarkAblationSearch compares exhaustive and conditional search (A1).
func BenchmarkAblationSearch(b *testing.B) { benchExperiment(b, "ablation-search") }

// BenchmarkAblationImportance toggles importance sampling (A2).
func BenchmarkAblationImportance(b *testing.B) { benchExperiment(b, "ablation-importance") }

// BenchmarkAblationSmoothing sweeps the flux smoothing passes (A3).
func BenchmarkAblationSmoothing(b *testing.B) { benchExperiment(b, "ablation-smoothing") }

// BenchmarkCountermeasure sweeps the traffic-reshaping defense (A4).
func BenchmarkCountermeasure(b *testing.B) { benchExperiment(b, "countermeasure") }

// BenchmarkNoiseRobustness sweeps measurement noise on the readings (A5).
func BenchmarkNoiseRobustness(b *testing.B) { benchExperiment(b, "noise") }

// BenchmarkBaselineEKF compares the SMC tracker with the EKF baseline (A6).
func BenchmarkBaselineEKF(b *testing.B) { benchExperiment(b, "baseline-ekf") }

// BenchmarkAblationHeading toggles heading-informed prediction (A7).
func BenchmarkAblationHeading(b *testing.B) { benchExperiment(b, "ablation-heading") }

// BenchmarkAblationPacketLevel compares fluid and packet-level sniffing (A8).
func BenchmarkAblationPacketLevel(b *testing.B) { benchExperiment(b, "ablation-packet") }

// BenchmarkAggregationDefense evaluates TAG aggregation as a defense (A9).
func BenchmarkAggregationDefense(b *testing.B) { benchExperiment(b, "aggregation") }

// The Sequential/Parallel pairs below measure the trial pool directly:
// Sequential pins Workers=1 (the legacy path), Parallel uses one worker
// per CPU. On a multi-core machine the Parallel variants should approach
// a GOMAXPROCS-fold speedup; on one core they coincide.

// BenchmarkFig5Sequential runs instant localization with Workers=1.
func BenchmarkFig5Sequential(b *testing.B) { benchExperimentWorkers(b, "fig5", 1) }

// BenchmarkFig5Parallel runs instant localization with one worker per CPU.
func BenchmarkFig5Parallel(b *testing.B) { benchExperimentWorkers(b, "fig5", 0) }

// BenchmarkFig7Sequential runs the tracking cases with Workers=1.
func BenchmarkFig7Sequential(b *testing.B) { benchExperimentWorkers(b, "fig7", 1) }

// BenchmarkFig7Parallel runs the tracking cases with one worker per CPU.
func BenchmarkFig7Parallel(b *testing.B) { benchExperimentWorkers(b, "fig7", 0) }
