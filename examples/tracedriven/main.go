// Tracedriven: the paper's §5.C experiment in miniature — replay synthetic
// campus AP-association traces (the Dartmouth-dataset substitute) through
// the asynchronous tracker.
//
// Twenty users roam a campus; their association records are compressed in
// time by a factor of 100 and a segment is windowed out. Each association
// is a data collection: at any instant only a few users are active, and the
// tracker's asynchronous updating (§4.E) freezes the idle ones.
//
// Run with: go run ./examples/tracedriven
package main

import (
	"fmt"
	"log"
	"sort"

	"fluxtrack/internal/core"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/trace"
	"fluxtrack/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	src := rng.New(5)

	// Synthesize the campus and its traces.
	campusArea := geom.Square(1000)
	campus, err := trace.GenerateCampus(campusArea, 500, src)
	if err != nil {
		return err
	}
	region := geom.NewRect(geom.Pt(250, 250), geom.Pt(750, 750))
	landmarks := campus.Landmarks(region, 50)
	records, err := trace.Generate(trace.Campus{Area: region, APs: landmarks}, trace.GenConfig{
		NumUsers: 20,
		Duration: 400000,
		MinDwell: 300, // long dwells keep the per-window active count small
	}, src)
	if err != nil {
		return err
	}
	records, err = trace.Compress(records, 100) // the paper's x100 compression
	if err != nil {
		return err
	}
	const windowLen = 40.0
	records = trace.Window(records, 1000, 1000+windowLen)

	field := geom.Square(30)
	byUser := trace.Paths(records, landmarks)
	users20 := make([]string, 0, len(byUser))
	for user := range byUser {
		users20 = append(users20, user)
	}
	sort.Strings(users20) // map order is randomized; keep runs reproducible
	paths := make([]trace.TimedPath, 0, 20)
	for _, user := range users20 {
		paths = append(paths, byUser[user].MapRect(region, field))
	}
	fmt.Printf("trace window: %d records, %d users with activity\n", len(records), len(paths))

	// Deploy the sensor field over the landmark region and attack it.
	scenario, err := core.NewScenario(core.ScenarioConfig{}, src)
	if err != nil {
		return err
	}
	sniffer, err := scenario.NewSniffer(0.10, src)
	if err != nil {
		return err
	}
	tracker, err := sniffer.NewTracker(len(paths), core.TrackerConfig{
		N: 400, M: 10, VMax: 5, ActiveSetLimit: 4,
		Workers: 0, // parallel rounds; the table below is byte-identical at any value
	}, 11)
	if err != nil {
		return err
	}
	stretches := make([]float64, len(paths))
	for i := range stretches {
		stretches[i] = src.Uniform(1, 3)
	}

	fmt.Println("\nround | active users | tracked (err of each active user)")
	for round := 1; round <= int(windowLen); round++ {
		t := float64(round)
		// Users that collected data in this window.
		var users []traffic.User
		var truths []geom.Point
		for i, tp := range paths {
			collected := false
			for _, ct := range tp.Times {
				if ct > t-1 && ct <= t {
					collected = true
					break
				}
			}
			if !collected {
				continue
			}
			pos := field.Clamp(tp.At(t))
			users = append(users, traffic.User{Pos: pos, Stretch: stretches[i], Active: true})
			truths = append(truths, pos)
		}
		obs, err := sniffer.Observe(users, 0, src)
		if err != nil {
			return err
		}
		res, err := tracker.Step(t, obs)
		if err != nil {
			return err
		}
		if len(truths) == 0 {
			continue
		}
		var actives []geom.Point
		for _, est := range res.Estimates {
			if est.Active {
				actives = append(actives, est.Mean)
			}
		}
		line := fmt.Sprintf("%5d | %12d |", round, len(truths))
		for _, truth := range truths {
			best := -1.0
			for _, est := range actives {
				if d := est.Dist(truth); best < 0 || d < best {
					best = d
				}
			}
			if best < 0 {
				line += " missed"
			} else {
				line += fmt.Sprintf(" %.2f", best)
			}
		}
		fmt.Println(line)
	}
	fmt.Println("\nasynchronous collections keep the instantaneous user count small,")
	fmt.Println("which is exactly why 20 coexisting users remain trackable (§5.C).")
	return nil
}
