// Briefing: the full-map attack of §3.C (Figures 1 and 4) — with the flux
// of every node visible, users are identified one per round by peak
// detection, model fitting, and subtraction.
//
// The example prints the flux map before briefing and the residual map
// after each round, so the "peeling" of users is visible.
//
// Run with: go run ./examples/briefing
package main

import (
	"fmt"
	"log"
	"strings"

	"fluxtrack/internal/brief"
	"fluxtrack/internal/core"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	src := rng.New(12)
	scenario, err := core.NewScenario(core.ScenarioConfig{}, src)
	if err != nil {
		return err
	}
	users := []traffic.User{
		{Pos: geom.Pt(7, 8), Stretch: 3, Active: true},
		{Pos: geom.Pt(22, 10), Stretch: 2, Active: true},
		{Pos: geom.Pt(14, 24), Stretch: 1.5, Active: true},
	}
	flux, err := scenario.GroundFlux(users)
	if err != nil {
		return err
	}

	fmt.Println("combined flux of three users (X marks truths):")
	fmt.Print(render(scenario, flux, users))

	dets, err := brief.Brief(scenario.Network(), scenario.Model(), flux, 3, brief.Options{})
	if err != nil {
		return err
	}
	fmt.Println("\nbriefing rounds:")
	for i, d := range dets {
		nearest, nd := nearestUser(d.Pos, users)
		fmt.Printf("  round %d: detected %v (stretch %.2f) -> %.2f from user %d\n",
			i+1, d.Pos, d.Stretch, nd, nearest+1)
	}
	if len(dets) < len(users) {
		fmt.Printf("  (%d of %d users found before the residual energy collapsed)\n",
			len(dets), len(users))
	}
	return nil
}

func nearestUser(p geom.Point, users []traffic.User) (int, float64) {
	best, bestD := -1, 0.0
	for i, u := range users {
		if d := p.Dist(u.Pos); best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// render draws the flux as a coarse ASCII heat map.
func render(sc *core.Scenario, flux []float64, users []traffic.User) string {
	const w, h = 60, 20
	glyphs := []byte(" .:-=+*#%@")
	grid := make([][]float64, h)
	counts := make([][]int, h)
	for y := range grid {
		grid[y] = make([]float64, w)
		counts[y] = make([]int, w)
	}
	field := sc.Field()
	net := sc.Network()
	var maxCell float64
	for i := 0; i < net.Len(); i++ {
		p := net.Pos(i)
		x := min(int(float64(w)*(p.X-field.Min.X)/field.Width()), w-1)
		y := min(int(float64(h)*(p.Y-field.Min.Y)/field.Height()), h-1)
		grid[y][x] += flux[i]
		counts[y][x]++
	}
	for y := range grid {
		for x := range grid[y] {
			if counts[y][x] > 0 {
				grid[y][x] /= float64(counts[y][x])
				if grid[y][x] > maxCell {
					maxCell = grid[y][x]
				}
			}
		}
	}
	var b strings.Builder
	for y := h - 1; y >= 0; y-- {
		for x := 0; x < w; x++ {
			ch := byte(' ')
			if counts[y][x] > 0 && maxCell > 0 {
				ch = glyphs[int(float64(len(glyphs)-1)*grid[y][x]/maxCell)]
			}
			b.WriteByte(ch)
		}
		b.WriteByte('\n')
	}
	out := []byte(b.String())
	for _, u := range users {
		x := min(int(float64(w)*(u.Pos.X-field.Min.X)/field.Width()), w-1)
		y := min(int(float64(h)*(u.Pos.Y-field.Min.Y)/field.Height()), h-1)
		out[(h-1-y)*(w+1)+x] = 'X'
	}
	return string(out)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
