// Tracking: follow two mobile users — whose trajectories cross — with the
// Sequential Monte Carlo tracker of Algorithm 4.1, sniffing 10% of nodes.
//
// This is the scenario of the paper's Figure 7(d): when the users meet, the
// tracker cannot distinguish their identities and may swap them, but it
// keeps reporting both trajectories accurately.
//
// It also demonstrates the observability layer: a metrics registry bound
// through core.TrackerConfig collects the tracker's work counters (rounds,
// candidate evaluations, NNLS iterations) without changing a single output
// byte — the per-round table below is identical with or without it, and at
// any Workers value.
//
// Run with: go run ./examples/tracking
package main

import (
	"fmt"
	"log"

	"fluxtrack/internal/core"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mobility"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	src := rng.New(7)
	scenario, err := core.NewScenario(core.ScenarioConfig{}, src)
	if err != nil {
		return err
	}

	const rounds = 10
	trajA, trajB, err := mobility.CrossingPair(scenario.Field(), 2.5, 0, rounds)
	if err != nil {
		return err
	}
	stretches := []float64{2.0, 2.5}

	sniffer, err := scenario.NewSniffer(0.10, src)
	if err != nil {
		return err
	}
	met := obs.New(0)
	tracker, err := sniffer.NewTracker(2, core.TrackerConfig{
		N: 600, M: 10, VMax: 5,
		Workers: 0, // one goroutine per CPU inside each round; output is identical at any value
		Metrics: met,
	}, 99)
	if err != nil {
		return err
	}

	fmt.Println("round | true A        true B        | est 1         est 2         | matched err")
	for round := 1; round <= rounds; round++ {
		t := float64(round)
		truths := []geom.Point{
			scenario.Field().Clamp(trajA.At(t)),
			scenario.Field().Clamp(trajB.At(t)),
		}
		users := []traffic.User{
			{Pos: truths[0], Stretch: stretches[0], Active: true},
			{Pos: truths[1], Stretch: stretches[1], Active: true},
		}
		obs, err := sniffer.Observe(users, 0, src)
		if err != nil {
			return err
		}
		res, err := tracker.Step(t, obs)
		if err != nil {
			return err
		}
		e1, e2 := res.Estimates[0].Mean, res.Estimates[1].Mean
		fmt.Printf("%5d | %-13s %-13s | %-13s %-13s | %.2f\n",
			round, truths[0], truths[1], e1, e2, matchedErr([]geom.Point{e1, e2}, truths))
	}
	fmt.Println("\nnote: around the crossing the colored estimates may swap users —")
	fmt.Println("the flux fingerprint carries positions, not identities (Fig 7d).")
	fmt.Println("\nwork counters for the run (deterministic at any worker count):")
	fmt.Print(met.Snapshot().Format())
	return nil
}

// matchedErr returns the mean of the identity-agnostic pairing distances.
func matchedErr(ests, truths []geom.Point) float64 {
	d1 := (ests[0].Dist(truths[0]) + ests[1].Dist(truths[1])) / 2
	d2 := (ests[0].Dist(truths[1]) + ests[1].Dist(truths[0])) / 2
	if d2 < d1 {
		return d2
	}
	return d1
}
