// Countermeasure: the defenses sketched in the paper's future work (§6) —
// reshape the network's traffic so the fingerprint the attacker fits
// against no longer matches reality.
//
// The example drives the registered "countermeasure" experiment (see
// internal/exp), which sweeps two defense knobs: dummy-traffic injection
// (every node adds uniform dummy flux up to a multiple of the mean per-node
// flux) and route randomization (nodes deviate from the nearest
// closer-to-sink parent with probability p, so subtree sizes — and the flux
// shape — drift from the shortest-path trees the attacker's model was
// calibrated on). Rows where the attacker's error climbs toward the
// random-guess baseline (~11.7 on the 30x30 field) mark defenses that buy
// privacy, at proportional energy or latency cost.
//
// Run with: go run ./examples/countermeasure
// Flags scale effort: -trials, -samples, -seed, -workers.
package main

import (
	"flag"
	"fmt"
	"log"

	"fluxtrack/internal/exp"
)

func main() {
	trials := flag.Int("trials", 3, "trials per defense cell")
	samples := flag.Int("samples", 2000, "candidate positions per user in the search")
	seed := flag.Uint64("seed", 1, "base seed")
	workers := flag.Int("workers", 0, "worker goroutines (0 = one per CPU)")
	flag.Parse()

	if err := run(*trials, *samples, *seed, *workers); err != nil {
		log.Fatal(err)
	}
}

func run(trials, samples int, seed uint64, workers int) error {
	e, err := exp.ByID("countermeasure")
	if err != nil {
		return err
	}
	cfg := exp.QuickConfig()
	cfg.Seed = seed
	cfg.Trials = trials
	cfg.Samples = samples
	cfg.Workers = workers
	table, err := e.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Print(table.Render())
	fmt.Println("\nrandom-guess baseline on the 30x30 field is ~11.7; defenses that push")
	fmt.Println("the attacker's error toward it buy privacy at proportional cost.")
	return nil
}
