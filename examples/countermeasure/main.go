// Countermeasure: the defense sketched in the paper's future work (§6) —
// reshape the network traffic with dummy flux so the fingerprint blurs.
//
// Every node injects uniform dummy traffic; the example sweeps the dummy
// amplitude and shows the attack's localization error climbing toward the
// random-guess baseline, quantifying how much cover traffic privacy costs.
//
// Run with: go run ./examples/countermeasure
package main

import (
	"fmt"
	"log"

	"fluxtrack/internal/core"
	"fluxtrack/internal/fit"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	src := rng.New(31)
	scenario, err := core.NewScenario(core.ScenarioConfig{}, src)
	if err != nil {
		return err
	}
	users := traffic.RandomUsers(scenario.Field(), 2, 1, 3, src)
	flux, err := scenario.GroundFlux(users)
	if err != nil {
		return err
	}
	var meanFlux float64
	for _, f := range flux {
		meanFlux += f
	}
	meanFlux /= float64(len(flux))

	nodes, err := traffic.PickSamplingNodes(scenario.Network(), 90, src)
	if err != nil {
		return err
	}
	points := make([]geom.Point, len(nodes))
	for i, n := range nodes {
		points[i] = scenario.Network().Pos(n)
	}
	truths := []geom.Point{users[0].Pos, users[1].Pos}

	fmt.Println("two users, 10% sniffing; dummy traffic per node ~ U[0, amplitude]")
	fmt.Println("amplitude(x mean flux) | mean localization error")
	for _, amp := range []float64{0, 0.5, 1, 2, 4, 8} {
		shaped := flux
		if amp > 0 {
			shaped = traffic.Reshape(flux, amp*meanFlux, src)
		}
		meas, err := traffic.Sample(shaped, nodes)
		if err != nil {
			return err
		}
		prob, err := fit.NewProblem(scenario.Model(), points, meas.Flux)
		if err != nil {
			return err
		}
		res, err := fit.Localize(prob, 2, fit.Options{Samples: 2000, TopM: 10}, src)
		if err != nil {
			return err
		}
		errMean := matchedMean(res.Best[0].Positions, truths)
		fmt.Printf("%22.1f | %.2f\n", amp, errMean)
	}
	fmt.Println("\nrandom-guess baseline on a 30x30 field is ~11.7; amplitudes that push")
	fmt.Println("the error toward it buy privacy at proportional energy cost.")
	return nil
}

func matchedMean(ests, truths []geom.Point) float64 {
	used := make([]bool, len(truths))
	var sum float64
	var n int
	for _, est := range ests {
		best, bestD := -1, 0.0
		for j, tr := range truths {
			if used[j] {
				continue
			}
			d := est.Dist(tr)
			if best < 0 || d < bestD {
				best, bestD = j, d
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		sum += bestD
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
