// Quickstart: the smallest end-to-end flux-fingerprinting attack.
//
// It deploys the paper's standard sensor network (900 nodes, 30x30 field),
// lets two mobile users collect data, sniffs the traffic flux at just 10%
// of the nodes, and recovers both user positions with NLS parameter
// fitting — no packet contents required.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fluxtrack/internal/core"
	"fluxtrack/internal/fit"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	src := rng.New(2024)

	// 1. The world: a sensor network deployment with a calibrated flux model.
	scenario, err := core.NewScenario(core.ScenarioConfig{}, src)
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	fmt.Printf("deployed %d nodes, average degree %.1f, hop length %.2f\n",
		scenario.Network().Len(),
		scenario.Network().AvgDegree(),
		scenario.Calibration().HopLength)

	// 2. The victims: two mobile users collecting data from the network.
	users := traffic.RandomUsers(scenario.Field(), 2, 1, 3, src)
	for i, u := range users {
		fmt.Printf("user %d at %v with traffic stretch %.2f\n", i+1, u.Pos, u.Stretch)
	}

	// 3. The adversary: a passive sniffer covering 10% of the nodes.
	sniffer, err := scenario.NewSniffer(0.10, src)
	if err != nil {
		return fmt.Errorf("sniffer: %w", err)
	}
	if _, err := sniffer.Observe(users, 0, src); err != nil {
		return fmt.Errorf("observe: %w", err)
	}

	// 4. The attack: NLS fitting of the flux model (Eq 4.1).
	res, err := sniffer.Localize(len(users), fit.Options{Samples: 3000, TopM: 10}, src)
	if err != nil {
		return fmt.Errorf("localize: %w", err)
	}

	fmt.Println("\nrecovered positions (from traffic volume alone):")
	best := res.Best[0]
	for j, pos := range best.Positions {
		// Identities are exchangeable; report the nearest true user.
		bestD, bestU := -1.0, 0
		for u := range users {
			if d := pos.Dist(users[u].Pos); bestD < 0 || d < bestD {
				bestD, bestU = d, u
			}
		}
		fmt.Printf("  estimate %d: %v -> %.2f away from user %d\n", j+1, pos, bestD, bestU+1)
	}
	fmt.Printf("objective ||F-F'|| = %.1f over %d sniffed nodes\n",
		best.Objective, len(sniffer.Nodes()))
	return nil
}
