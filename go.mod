module fluxtrack

go 1.22
