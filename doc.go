// Package fluxtrack reproduces "Fingerprinting Mobile User Positions in
// Sensor Networks" (Li, Jiang, Guibas — ICDCS 2010): a privacy attack that
// localizes and tracks mobile users inside a wireless sensor network from
// passively sniffed traffic-volume (flux) measurements alone.
//
// # The attack in one paragraph
//
// Mobile users act as mobile sinks: each data collection builds a routing
// tree rooted at the user's nearest node, so the per-node traffic volume
// ("flux") is proportional to subtree size and peaks at the user's
// position. The adversary sniffs flux at a sparse subset of nodes, fits a
// theoretical flux model to the readings by nonlinear least squares (the
// positions are the nonlinear unknowns; the per-user traffic stretches are
// solved in closed form by NNLS), and tracks users across observation
// rounds with a Sequential Monte Carlo filter (the paper's Algorithm 4.1).
//
// # Package layout
//
// The pipeline substrate, attack layers, and evaluation harness live under
// internal/:
//
//	geom       points, rects, ray-boundary intersection
//	rng        deterministic splitmix64 RNG and geometric samplers
//	mat        dense matrices, QR/Cholesky LSQ, NNLS, LM/GN solvers
//	stats      summaries, CDFs, percentiles
//	deploy     perturbed-grid and uniform-random deployments
//	network    unit-disk graph, BFS hops, neighborhood smoothing
//	routing    collection trees, subtree flux
//	traffic    users, combined flux, sampling, noise, reshaping
//	fluxmodel  the paper's theoretical flux model + accuracy stats
//	fit        NLS fitting and the parallel candidate search (§4.A)
//	brief      full-map recursive briefing baseline (§3.C)
//	smc        Algorithm 4.1 SMC tracker (+ active sets, heading)
//	ekf        Extended Kalman Filter baseline tracker
//	fault      deterministic fault injection + Byzantine adversary
//	fingerprint coarse-to-fine fingerprint candidate search
//	shard      tiled multi-shard tracking with cross-tile handoff
//	serve      resident multi-tenant tracking service (fluxserve)
//	sim        packet-level discrete-event collection simulator
//	mobility   trajectories and speed-bounded walks
//	trace      synthetic campus traces + syslog parser
//	obslog     observation recording format for offline attacks
//	obs        zero-overhead observability: counters, histograms, spans
//	par        deterministic fork-join worker pool
//	plot       ASCII charts for the CLI tools
//	core       top-level orchestration API (Scenario, Sniffer, trackers)
//	exp        experiment implementations + table rendering
//
// The cmd/ directory holds the CLI tools (fluxbench regenerates every
// evaluation table; fluxsim renders single scenarios; tracegen and fluxrec
// handle traces and offline attacks), and examples/ holds runnable
// end-to-end scenarios.
//
// # Experiment index
//
// internal/exp regenerates every figure of the paper's evaluation plus the
// ablations of DESIGN.md §4; cmd/fluxbench runs them by id:
//
//	E1   fig3a      model approximation error CDF vs density
//	E2   fig3b      measured vs model flux by hop count
//	E3   fig4       recursive flux briefing, 3 users (§3.C)
//	E4   fig5       instant localization, 1/2/3 users, full effort
//	E5   fig6a      localization error vs sampling % (40 → 5)
//	E6   fig6b      localization error vs node count (900 → 1800)
//	E7   fig7       tracking cases incl. crossing trajectories
//	E8   fig8a      tracking error vs sampling %
//	E9   fig8b      tracking error vs node count
//	E10  fig10a     trace-driven tracking vs sampling %, grid vs random
//	E11  fig10b     trace-driven tracking vs max speed
//	A1+  ablations  search strategy, importance sampling, smoothing,
//	                countermeasures, noise, EKF baseline, heading,
//	                packet-level realism, aggregation defense
//	—    figRobust  tracking under degraded sensing (internal/fault)
//	E12  figCoarse  coarse-to-fine shortlist agreement + cost
//	E13  figShard   tiled tracking: seams, halos, per-tile work
//	E14  —          shard scale-out: skewed 10⁴–10⁵-user populations
//	E15  —          resident serving: step latency vs tenant count
//	E16  figByzantine  Byzantine sensors × robust-fit defenses
//	A4   countermeasure  traffic shaping (dummy flux + route
//	                randomization) vs attacker accuracy
//
// Run `fluxbench -list` for the exact registered ids and one-line notes;
// EXPERIMENTS.md records paper-reported vs measured shapes for each.
//
// # Determinism and parallelism
//
// Every stochastic component draws from an explicit seeded rng.Source, and
// every parallel layer (experiment trials, tracker phases, candidate
// scoring) shards work so results merge in index order: tables and tracker
// output are byte-identical at any worker count. The observability layer
// (internal/obs) preserves this — enabling metrics or step tracing never
// changes results, and counter totals are themselves worker-count-invariant.
package fluxtrack
