// Package fluxtrack reproduces "Fingerprinting Mobile User Positions in
// Sensor Networks" (Li, Jiang, Guibas — ICDCS 2010): a privacy attack that
// localizes and tracks mobile users inside a wireless sensor network from
// passively sniffed traffic-volume (flux) measurements alone.
//
// The implementation lives under internal/: see internal/core for the
// top-level attack pipeline, internal/fluxmodel for the theoretical flux
// model, internal/fit for the NLS parameter fitting, internal/smc for the
// Sequential Monte Carlo tracker, and internal/exp for the experiment
// harness that regenerates every figure of the paper's evaluation. The
// examples/ directory contains runnable end-to-end scenarios and cmd/ the
// command-line tools.
package fluxtrack
